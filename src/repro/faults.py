"""Deterministic fault injection for recovery and chaos testing.

WfBench-style methodology: recovery paths are only trustworthy if they
are exercised by *injected* failures, reproducibly. A
:class:`FaultPlan` bundles the deterministic faults a single run sees:

* :class:`ChunkCrash` — kill a :class:`~repro.core.local.LocalRunner`
  run by raising :class:`FaultInjected` after N chunks of a phase have
  completed (and been checkpointed), simulating a mid-run process death;
* :class:`ChunkFlake` — fail the first ``times`` *attempts* of one
  chunk with a retryable :class:`TransientFault` (a flaky execute
  point), exercising the runner's retry/backoff path instead of its
  crash-recovery path;
* :class:`PoolFault` — at a fixed simulation time, evict or hold
  running jobs or kill a whole DAGMan on an
  :class:`~repro.osg.pool.OSPoolSimulator` via its injection hooks.

The chaos campaign (PR 8) adds three infrastructure fault models:

* :class:`StorageFault` — corrupt an on-disk artifact in place
  (seeded bit-flip or truncation), which the integrity layer must catch
  and quarantine;
* :class:`TransferFaults` — per-attempt Stash/OSDF transfer failures
  and slow transfers, drawn from the fault model's *own* seeded
  generator so injecting faults never perturbs the simulator's other
  RNG streams (site selection, runtimes);
* :class:`SiteOutage` — a ``[start_s, end_s)`` window during which a
  federated storage site rejects every retrieval, driving the per-site
  circuit breakers of :class:`~repro.vdc.storage.FederatedStorage`.

Plans are plain data plus a little runtime state; :meth:`FaultPlan.seeded`
derives crash points from a seed through the package's
:class:`~repro.rng.RngFactory`, so a test's fault schedule is as
reproducible as the workload it perturbs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError, TransferError
from repro.rng import RngFactory

__all__ = [
    "FaultInjected",
    "TransientFault",
    "ChunkCrash",
    "ChunkFlake",
    "PoolFault",
    "StorageFault",
    "TransferFaults",
    "SiteOutage",
    "FaultPlan",
]

_POOL_ACTIONS = ("evict", "hold", "kill-dagman")


class FaultInjected(ReproError):
    """Raised (on purpose) when an injected crash point fires."""


class TransientFault(FaultInjected):
    """An injected *retryable* failure (flaky job, glitched transfer)."""

    retryable = True


@dataclass(frozen=True)
class ChunkCrash:
    """Crash a local run after ``after_chunks`` chunks of ``phase``.

    The crash fires *after* the Nth chunk completes and checkpoints, so
    a resumed run must skip exactly N chunks of that phase.
    """

    phase: str
    after_chunks: int

    def __post_init__(self) -> None:
        if self.phase not in ("A", "C"):
            raise ReproError(f"crashes target chunked phases A/C, got {self.phase!r}")
        if self.after_chunks < 1:
            raise ReproError(f"after_chunks must be >= 1, got {self.after_chunks}")


@dataclass(frozen=True)
class ChunkFlake:
    """Fail the first ``times`` attempts of one chunk, retryably.

    Unlike :class:`ChunkCrash` (which kills the run *after* a chunk
    checkpoints), a flake fires on the *attempt* — the runner's
    retry wrapper re-executes the chunk until the flake is spent, so
    a run with flakes completes with extra attempts but identical
    products.
    """

    phase: str
    index: int
    times: int = 1

    def __post_init__(self) -> None:
        if self.phase not in ("A", "C"):
            raise ReproError(f"flakes target chunked phases A/C, got {self.phase!r}")
        if self.index < 0:
            raise ReproError(f"index must be >= 0, got {self.index}")
        if self.times < 1:
            raise ReproError(f"times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class PoolFault:
    """One scheduled pool fault.

    ``action`` is ``"evict"`` / ``"hold"`` (force-evict or force-hold
    the ``count`` newest running jobs) or ``"kill-dagman"`` (abort the
    named DAGMan); ``at_s`` is the simulation time it fires.
    """

    action: str
    at_s: float
    dagman: str | None = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.action not in _POOL_ACTIONS:
            raise ReproError(f"unknown pool fault action {self.action!r}")
        if self.at_s < 0:
            raise ReproError(f"at_s must be >= 0, got {self.at_s}")
        if self.count < 1:
            raise ReproError(f"count must be >= 1, got {self.count}")
        if self.action == "kill-dagman" and self.dagman is None:
            raise ReproError("kill-dagman requires a dagman name")


_STORAGE_FAULT_KINDS = ("bitflip", "truncate")


@dataclass(frozen=True)
class StorageFault:
    """Seeded in-place corruption of one on-disk artifact.

    ``"bitflip"`` flips a single bit at a seed-derived offset;
    ``"truncate"`` cuts the file to a seed-derived fraction of its
    length (at least one byte shorter). Either way the artifact's
    sha256 sidecar no longer matches, so a verified read must raise
    :class:`~repro.errors.IntegrityError` and quarantine the file.
    """

    kind: str = "bitflip"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _STORAGE_FAULT_KINDS:
            raise ReproError(f"unknown storage fault kind {self.kind!r}")

    def apply(self, path: str | Path) -> Path:
        """Corrupt ``path`` in place; returns the path."""
        path = Path(path)
        data = bytearray(path.read_bytes())
        if not data:
            raise ReproError(f"cannot corrupt empty artifact {path}")
        rng = RngFactory(self.seed).generator("faults", "storage", path.name)
        if self.kind == "bitflip":
            offset = int(rng.integers(len(data)))
            data[offset] ^= 1 << int(rng.integers(8))
            path.write_bytes(bytes(data))
        else:  # truncate
            keep = int(rng.integers(len(data)))  # in [0, len)
            path.write_bytes(bytes(data[:keep]))
        return path


@dataclass
class TransferFaults:
    """Seeded per-attempt faults on the Stash/OSDF delivery path.

    Attributes
    ----------
    failure_prob:
        Probability one transfer attempt fails outright
        (:class:`~repro.errors.TransferError`, retryable).
    slow_prob, slow_factor:
        Probability an attempt is degraded, and the multiplier applied
        to its elapsed time when it is.
    seed:
        Root of the model's private generator — fault draws never touch
        the simulator's ``transfer`` stream, so turning faults on does
        not change which cache site any job lands at.
    """

    failure_prob: float = 0.0
    slow_prob: float = 0.0
    slow_factor: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.failure_prob < 1.0):
            raise ReproError(
                f"failure_prob must be in [0, 1), got {self.failure_prob}"
            )
        if not (0.0 <= self.slow_prob < 1.0):
            raise ReproError(f"slow_prob must be in [0, 1), got {self.slow_prob}")
        if self.slow_factor < 1.0:
            raise ReproError(f"slow_factor must be >= 1, got {self.slow_factor}")
        self._rng = RngFactory(self.seed).generator("faults", "transfer")
        self.n_failures = 0
        self.n_slow = 0

    def reset(self) -> None:
        """Rewind the fault stream (a fresh campaign, same schedule)."""
        self._rng = RngFactory(self.seed).generator("faults", "transfer")
        self.n_failures = 0
        self.n_slow = 0

    def draw(self) -> tuple[bool, float]:
        """One attempt's fate: ``(fails, time multiplier)``.

        Both variates are always drawn so the stream position depends
        only on the attempt count, not on earlier outcomes.
        """
        fails = bool(self._rng.random() < self.failure_prob)
        slow = bool(self._rng.random() < self.slow_prob)
        if fails:
            self.n_failures += 1
        if slow:
            self.n_slow += 1
        return fails, (self.slow_factor if slow else 1.0)

    def fail_now(self, detail: str) -> "TransferError":
        """The typed, retryable error one failed attempt raises."""
        return TransferError(f"injected transfer fault: {detail}")


@dataclass(frozen=True)
class SiteOutage:
    """One storage site dark over ``[start_s, end_s)`` of injected time."""

    site: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if not self.site:
            raise ReproError("outage site must be non-empty")
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ReproError(
                f"outage window must satisfy 0 <= start < end, "
                f"got [{self.start_s}, {self.end_s})"
            )

    def active(self, now: float) -> bool:
        """Whether the site is dark at time ``now``."""
        return self.start_s <= now < self.end_s


@dataclass
class FaultPlan:
    """A deterministic schedule of faults for one run.

    One plan instance drives one run: :meth:`chunk_completed` keeps
    per-phase counters and each :class:`ChunkCrash` fires at most once;
    :meth:`chunk_attempt` keeps per-chunk attempt counters and each
    :class:`ChunkFlake` fails its first ``times`` attempts.
    """

    crashes: tuple[ChunkCrash, ...] = ()
    flakes: tuple[ChunkFlake, ...] = ()
    pool_faults: tuple[PoolFault, ...] = ()
    _chunk_counts: dict[str, int] = field(default_factory=dict, repr=False)
    _fired: set[ChunkCrash] = field(default_factory=set, repr=False)
    _attempts: dict[tuple[str, int], int] = field(default_factory=dict, repr=False)

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_a_chunks: int = 0,
        n_c_chunks: int = 0,
    ) -> "FaultPlan":
        """Derive crash points from a seed.

        For each phase with more than one chunk, the crash lands
        uniformly in ``[1, n_chunks - 1]`` — always mid-phase, so a
        resume has both completed chunks to skip and pending chunks to
        run.
        """
        rng = RngFactory(seed).generator("faults")
        crashes: list[ChunkCrash] = []
        if n_a_chunks > 1:
            crashes.append(ChunkCrash("A", int(rng.integers(1, n_a_chunks))))
        if n_c_chunks > 1:
            crashes.append(ChunkCrash("C", int(rng.integers(1, n_c_chunks))))
        return cls(crashes=tuple(crashes))

    def chunk_completed(self, phase: str) -> None:
        """Notify the plan that one chunk of ``phase`` completed.

        Raises
        ------
        FaultInjected
            When a not-yet-fired :class:`ChunkCrash` for this phase has
            its ``after_chunks`` count reached.
        """
        n = self._chunk_counts.get(phase, 0) + 1
        self._chunk_counts[phase] = n
        for crash in self.crashes:
            if crash.phase == phase and crash.after_chunks == n and crash not in self._fired:
                self._fired.add(crash)
                raise FaultInjected(
                    f"injected crash after {n} completed {phase} chunk(s)"
                )

    def chunk_attempt(self, phase: str, index: int) -> None:
        """Notify the plan that chunk ``index`` of ``phase`` is being
        attempted (called by the runner *before* executing it).

        Raises
        ------
        TransientFault
            While a matching :class:`ChunkFlake` still has attempts to
            fail — the runner's retry wrapper absorbs these.
        """
        n = self._attempts.get((phase, index), 0) + 1
        self._attempts[(phase, index)] = n
        for flake in self.flakes:
            if flake.phase == phase and flake.index == index and n <= flake.times:
                raise TransientFault(
                    f"injected flake: {phase} chunk {index}, attempt {n} "
                    f"of {flake.times} doomed"
                )

    def install(self, pool) -> None:
        """Schedule the plan's pool faults on an ``OSPoolSimulator``.

        Call after submissions, before ``pool.run()``.
        """
        for fault in self.pool_faults:
            if fault.action == "evict":
                pool.sim.schedule_at(
                    fault.at_s, lambda f=fault: pool.inject_eviction(f.count)
                )
            elif fault.action == "hold":
                pool.sim.schedule_at(
                    fault.at_s,
                    lambda f=fault: pool.inject_hold(f.count, dagman=f.dagman),
                )
            else:  # kill-dagman
                pool.sim.schedule_at(
                    fault.at_s, lambda f=fault: pool.kill_dagman(f.dagman)
                )
