"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing subsystem-specific failures when they need to.

Each error class carries a :attr:`ReproError.retryable` flag that the
resilience layer (:mod:`repro.resilience`) consults: transient
infrastructure faults (a flaky transfer, a corrupted cache entry that a
quarantine-and-rebuild will heal, a site mid-outage) are worth a backed-off
retry, while programming and configuration errors are not — retrying a
malformed DAG or a bad mesh only wastes the budget. The default is
``False``; only faults whose *re-attempt can plausibly succeed* opt in.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "GeometryError",
    "RuptureError",
    "StationError",
    "GreensFunctionError",
    "WaveformError",
    "ArchiveError",
    "CacheError",
    "CheckpointError",
    "IntegrityError",
    "SubmitError",
    "DagError",
    "JobStateError",
    "LogParseError",
    "SimulationError",
    "CapacityError",
    "TransferError",
    "TraceError",
    "PolicyError",
    "WfFormatError",
    "CatalogError",
    "StorageError",
    "StorageUnavailableError",
    "CircuitOpenError",
    "PortalError",
    "ServiceError",
    "QuotaExceededError",
    "BackpressureError",
    "ObsError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`.

    Attributes
    ----------
    retryable:
        Class-level flag: ``True`` when a backed-off re-attempt of the
        failed operation can plausibly succeed (transient infrastructure
        faults), ``False`` for programming/configuration errors where a
        retry would just repeat the failure. Consulted by
        :func:`repro.resilience.retry_call`.
    """

    retryable: bool = False


class ConfigError(ReproError):
    """An FDW configuration file or object is invalid."""


# --- seismo ---------------------------------------------------------------


class GeometryError(ReproError):
    """A fault geometry is malformed (empty mesh, bad dims, NaNs...)."""


class RuptureError(ReproError):
    """Stochastic rupture generation failed or produced invalid slip."""


class StationError(ReproError):
    """A GNSS station network definition is invalid."""


class GreensFunctionError(ReproError):
    """Green's function computation or lookup failed."""


class WaveformError(ReproError):
    """Waveform synthesis failed (missing GFs, shape mismatch...)."""


class ArchiveError(ReproError):
    """Reading or writing a MudPy-style product archive failed."""


class CacheError(ReproError):
    """Green's-function bank cache lookup, store, or sharing failed."""


class CheckpointError(ReproError):
    """A local-run checkpoint manifest is missing, stale, or corrupt."""


class IntegrityError(ReproError):
    """An on-disk artifact failed its content-digest check (corruption,
    truncation, or an unparseable payload).

    Retryable: the degraded-mode contract quarantines the damaged copy
    and rebuilds from source, so a re-attempt of the load/fetch is
    expected to succeed.
    """

    retryable = True


# --- condor ---------------------------------------------------------------


class SubmitError(ReproError):
    """A submit description is invalid or cannot be parsed."""


class DagError(ReproError):
    """A DAG description is invalid (cycle, unknown node, bad file)."""


class JobStateError(ReproError):
    """An illegal job state transition was requested."""


class LogParseError(ReproError):
    """An HTCondor-style user log could not be parsed."""


# --- osg ------------------------------------------------------------------


class SimulationError(ReproError):
    """The discrete-event pool simulation reached an invalid state."""


class CapacityError(ReproError):
    """A capacity process was configured with invalid parameters."""


class TransferError(ReproError):
    """A (simulated) file transfer failed in flight.

    Retryable: transfer failures on a federated substrate are routinely
    transient — the next attempt lands at a different cache site or
    after the glitch has passed.
    """

    retryable = True


# --- bursting -------------------------------------------------------------


class TraceError(ReproError):
    """A bursting-simulator CSV trace is malformed."""


class PolicyError(ReproError):
    """A bursting policy was configured with invalid parameters."""


# --- wf -------------------------------------------------------------------


class WfFormatError(ReproError):
    """A WfFormat workflow instance is malformed or inconsistent."""


# --- vdc ------------------------------------------------------------------


class CatalogError(ReproError):
    """A VDC catalog operation failed (duplicate id, missing product)."""


class StorageError(ReproError):
    """A federated storage operation failed."""


class StorageUnavailableError(StorageError):
    """No healthy replica of a product can currently serve a retrieval
    (site outages and/or open circuit breakers on every holder).

    Retryable: outages end and breakers half-open; a later attempt may
    find a recovered replica. Callers with the product's inputs should
    prefer the rebuild-from-source fallback instead of waiting.
    """

    retryable = True


class CircuitOpenError(StorageError):
    """A per-site circuit breaker is open and rejected the call fast.

    *Not* retryable by the backoff wrapper: the whole point of the
    breaker is to fail fast instead of hammering a dead site — recovery
    happens through the breaker's own half-open probing, not through
    caller-side retries.
    """

    retryable = False


class PortalError(ReproError):
    """A VDC portal request was invalid."""


# --- service --------------------------------------------------------------


class ServiceError(ReproError):
    """A portal-service request failed (bad tenant, closed service...)."""


class QuotaExceededError(ServiceError):
    """A tenant is at its per-tenant pending-submission quota.

    *Not* retryable by the backoff wrapper: the quota only frees up when
    the tenant's *own* earlier submissions finish, so the right reaction
    is to await an outstanding ticket, not to hammer ``submit`` on a
    backoff schedule.
    """

    retryable = False


class ObsError(ReproError):
    """An observability-layer operation is invalid (bad metric name, a
    counter/gauge/histogram type conflict, malformed exposition text).

    Not retryable: these are programming errors at the instrumentation
    site, not transient faults.
    """


class BackpressureError(ServiceError):
    """The service's shared submission queue is full.

    Retryable: the queue drains as the backends execute, so a backed-off
    re-submission is expected to land — the classic load-shedding
    contract (the client slows down instead of the service falling
    over).
    """

    retryable = True
