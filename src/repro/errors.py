"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing subsystem-specific failures when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "GeometryError",
    "RuptureError",
    "StationError",
    "GreensFunctionError",
    "WaveformError",
    "ArchiveError",
    "CacheError",
    "CheckpointError",
    "SubmitError",
    "DagError",
    "JobStateError",
    "LogParseError",
    "SimulationError",
    "CapacityError",
    "TraceError",
    "PolicyError",
    "WfFormatError",
    "CatalogError",
    "StorageError",
    "PortalError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An FDW configuration file or object is invalid."""


# --- seismo ---------------------------------------------------------------


class GeometryError(ReproError):
    """A fault geometry is malformed (empty mesh, bad dims, NaNs...)."""


class RuptureError(ReproError):
    """Stochastic rupture generation failed or produced invalid slip."""


class StationError(ReproError):
    """A GNSS station network definition is invalid."""


class GreensFunctionError(ReproError):
    """Green's function computation or lookup failed."""


class WaveformError(ReproError):
    """Waveform synthesis failed (missing GFs, shape mismatch...)."""


class ArchiveError(ReproError):
    """Reading or writing a MudPy-style product archive failed."""


class CacheError(ReproError):
    """Green's-function bank cache lookup, store, or sharing failed."""


class CheckpointError(ReproError):
    """A local-run checkpoint manifest is missing, stale, or corrupt."""


# --- condor ---------------------------------------------------------------


class SubmitError(ReproError):
    """A submit description is invalid or cannot be parsed."""


class DagError(ReproError):
    """A DAG description is invalid (cycle, unknown node, bad file)."""


class JobStateError(ReproError):
    """An illegal job state transition was requested."""


class LogParseError(ReproError):
    """An HTCondor-style user log could not be parsed."""


# --- osg ------------------------------------------------------------------


class SimulationError(ReproError):
    """The discrete-event pool simulation reached an invalid state."""


class CapacityError(ReproError):
    """A capacity process was configured with invalid parameters."""


# --- bursting -------------------------------------------------------------


class TraceError(ReproError):
    """A bursting-simulator CSV trace is malformed."""


class PolicyError(ReproError):
    """A bursting policy was configured with invalid parameters."""


# --- wf -------------------------------------------------------------------


class WfFormatError(ReproError):
    """A WfFormat workflow instance is malformed or inconsistent."""


# --- vdc ------------------------------------------------------------------


class CatalogError(ReproError):
    """A VDC catalog operation failed (duplicate id, missing product)."""


class StorageError(ReproError):
    """A federated storage operation failed."""


class PortalError(ReproError):
    """A VDC portal request was invalid."""
