"""Observability substrate: metrics registry, deterministic tracing, exporters.

The paper's operators monitored the OSG campaign by parsing HTCondor
log files with shell scripts after the fact; this package is the
integrated replacement for our reproduction — one place every layer
(LocalRunner phases, the GF/K-L caches, StashCache/federated-storage
transfers and circuit breakers, the OSPool DES, the bursting simulator,
and the multi-tenant portal) emits counters, histograms, and spans.

Usage::

    from repro import obs
    from repro.obs.export import dump_chrome_trace, prometheus_text

    with obs.observe() as run_obs:
        run_fdw_batch(config, seed=1)
    path.write_text(dump_chrome_trace(run_obs.tracer))
    prom = prometheus_text(run_obs.registry)

When no session is installed every hook is a single-branch no-op;
enabling observation never perturbs RNG streams or simulated event
order, so products and queue traces stay byte-identical (pinned by
``tests/obs/test_identity.py``).
"""

from repro.obs.registry import DEFAULT_BUCKETS, HistogramState, MetricsRegistry
from repro.obs.runtime import (
    ObsSession,
    complete,
    counter_add,
    declare_histogram,
    enabled,
    gauge_set,
    histogram_observe,
    histogram_observe_many,
    instant,
    observe,
    session,
    span,
)
from repro.obs.trace import Event, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramState",
    "MetricsRegistry",
    "ObsSession",
    "Event",
    "Tracer",
    "observe",
    "session",
    "enabled",
    "counter_add",
    "gauge_set",
    "declare_histogram",
    "histogram_observe",
    "histogram_observe_many",
    "span",
    "complete",
    "instant",
]
