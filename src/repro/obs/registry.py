"""Labeled metrics registry: counters, gauges, fixed-bucket histograms.

One registry instance holds every metric a run emits. Three metric
kinds, mirroring the Prometheus data model so the text exposition in
:mod:`repro.obs.export` is a direct rendering:

* **counter** — monotone float total (``counter_add``),
* **gauge** — last-write-wins float (``gauge_set``),
* **histogram** — fixed upper-bound buckets plus sum/count
  (``histogram_observe`` / vectorized ``histogram_observe_many``).

Every series is keyed by ``(metric name, sorted label items)``. A name
is bound to one kind on first use; a later use under a different kind
raises :class:`~repro.errors.ObsError` — mixed-type series are the
classic silent-aggregation bug this registry exists to kill.

The registry is deliberately dumb about time: it never reads a clock,
never draws randomness, and allocates nothing on the read path, so the
same instrumented run always produces the same snapshot — the property
the byte-identical-trace tests lean on.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import ObsError

__all__ = ["DEFAULT_BUCKETS", "HistogramState", "MetricsRegistry"]

#: Default histogram upper bounds (seconds-flavoured: from sub-ms local
#: chunk work up to the 8-hour tail of simulated OSPool queue waits).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
    1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
    1800.0, 7200.0, 28800.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_COUNTER = "counter"
_GAUGE = "gauge"
_HISTOGRAM = "histogram"


class HistogramState:
    """Mutable state of one histogram series (one label combination)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # ``le`` (<=) bucket semantics: a value equal to a bound lands in
        # that bound's bucket, matching Prometheus.
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: np.ndarray) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(self.buckets, arr, side="left")
        hits = np.bincount(idx, minlength=len(self.counts))
        for i, n in enumerate(hits):
            self.counts[i] += int(n)
        self.sum += float(arr.sum())
        self.count += arr.size

    def cumulative_counts(self) -> list[int]:
        """Bucket counts in Prometheus cumulative (``le``) form."""
        out, running = [], 0
        for n in self.counts:
            running += n
            out.append(running)
        return out


def _label_key(labels: Mapping[str, object] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Holds every labeled series emitted during one observed run."""

    def __init__(self) -> None:
        self._types: dict[str, str] = {}
        self._values: dict[tuple[str, tuple], float] = {}
        self._hists: dict[tuple[str, tuple], HistogramState] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}
        # Canonical-key memo: raw (insertion-ordered, unsorted) label
        # items -> validated sorted key. Hot instrumentation sites emit
        # the same few label combinations thousands of times; hitting
        # this dict skips re-sorting, re-stringifying, and re-validating
        # every time (part of the obs-overhead < 5% budget).
        self._key_cache: dict[tuple, tuple[tuple[str, str], ...]] = {}

    def _label_key_cached(
        self, labels: Mapping[str, object] | None
    ) -> tuple[tuple[str, str], ...]:
        if not labels:
            return ()
        try:
            raw = tuple(labels.items())
            cached = self._key_cache.get(raw)
        except TypeError:  # unhashable label value: take the slow path
            self._check_labels(labels)
            return _label_key(labels)
        if cached is not None:
            return cached
        self._check_labels(labels)
        key = _label_key(labels)
        self._key_cache[raw] = key
        return key

    # -- registration ------------------------------------------------------

    def _bind(self, name: str, kind: str) -> None:
        known = self._types.get(name)
        if known is None:
            if not _NAME_RE.match(name):
                raise ObsError(f"invalid metric name {name!r}")
            self._types[name] = kind
        elif known != kind:
            raise ObsError(
                f"metric {name!r} already registered as {known}, "
                f"cannot use as {kind}"
            )

    @staticmethod
    def _check_labels(labels: Mapping[str, object] | None) -> None:
        if labels:
            for k in labels:
                if not _LABEL_RE.match(k):
                    raise ObsError(f"invalid label name {k!r}")

    def declare_histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        """Pin a histogram's bucket bounds (strictly ascending, finite).

        Optional — the first ``histogram_observe`` call binds
        :data:`DEFAULT_BUCKETS` otherwise. Re-declaring with different
        bounds raises (bucket drift would corrupt merged series).
        """
        self._bind(name, _HISTOGRAM)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(not np.isfinite(b) for b in bounds):
            raise ObsError(f"histogram {name!r}: buckets must be finite and non-empty")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObsError(f"histogram {name!r}: buckets must be strictly ascending")
        known = self._buckets.get(name)
        if known is not None and known != bounds:
            raise ObsError(f"histogram {name!r}: conflicting bucket declarations")
        self._buckets[name] = bounds

    # -- writes ------------------------------------------------------------

    def counter_add(
        self,
        name: str,
        value: float = 1.0,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        if value < 0:
            raise ObsError(f"counter {name!r}: negative increment {value!r}")
        self._bind(name, _COUNTER)
        key = (name, self._label_key_cached(labels))
        self._values[key] = self._values.get(key, 0.0) + float(value)

    def gauge_set(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        self._bind(name, _GAUGE)
        self._values[(name, self._label_key_cached(labels))] = float(value)

    def _hist_state(
        self, name: str, labels: Mapping[str, object] | None
    ) -> HistogramState:
        self._bind(name, _HISTOGRAM)
        key = (name, self._label_key_cached(labels))
        state = self._hists.get(key)
        if state is None:
            bounds = self._buckets.setdefault(name, DEFAULT_BUCKETS)
            state = self._hists[key] = HistogramState(bounds)
        return state

    def histogram_observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        self._hist_state(name, labels).observe(value)

    def histogram_observe_many(
        self,
        name: str,
        values: Iterable[float] | np.ndarray,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        arr = values if isinstance(values, np.ndarray) else np.asarray(
            list(values), dtype=float
        )
        self._hist_state(name, labels).observe_many(arr)

    # -- reads -------------------------------------------------------------

    def kind(self, name: str) -> str | None:
        return self._types.get(name)

    def counter_value(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> float:
        return self._values.get((name, _label_key(labels)), 0.0)

    def gauge_value(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> float:
        return self._values.get((name, _label_key(labels)), 0.0)

    def histogram_state(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> HistogramState | None:
        return self._hists.get((name, _label_key(labels)))

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all of its label combinations."""
        return sum(v for (n, _), v in self._values.items()
                   if n == name and self._types.get(n) == _COUNTER)

    def names(self) -> list[str]:
        return sorted(self._types)

    def snapshot(self) -> dict:
        """Plain-dict view of every series, deterministically ordered.

        Shape: ``{name: {"type": kind, "series": [{"labels": {...},
        "value"| "sum"/"count"/"buckets"/"counts": ...}, ...]}}`` with
        series sorted by label items — stable input for exporters and
        byte-identity tests.
        """
        out: dict = {}
        for name in self.names():
            kind = self._types[name]
            series: list[dict] = []
            if kind == _HISTOGRAM:
                rows = sorted(
                    (lk, st) for (n, lk), st in self._hists.items() if n == name
                )
                for lk, st in rows:
                    series.append({
                        "labels": dict(lk),
                        "buckets": list(st.buckets),
                        "counts": list(st.counts),
                        "sum": st.sum,
                        "count": st.count,
                    })
            else:
                rows = sorted(
                    (lk, v) for (n, lk), v in self._values.items() if n == name
                )
                for lk, v in rows:
                    series.append({"labels": dict(lk), "value": v})
            out[name] = {"type": kind, "series": series}
        return out
