"""Process-wide observation session and the no-op-when-disabled hooks.

Instrumentation sites throughout :mod:`repro` call the module-level
helpers here (``counter_add``, ``histogram_observe``, ``complete``,
``span``...). Each helper starts with one global load and a ``None``
check, so an **un-observed run pays a single branch per hook** — that is
the whole "disabled path is a no-op" contract, and the
``obs-overhead`` bench asserts the enabled path stays under its budget
too.

A session is installed with the :class:`observe` context manager::

    with observe() as obs_session:
        run_fdw_batch(...)
    text = prometheus_text(obs_session.registry)

Sessions stack (the previous one is restored on exit), which keeps
nested drivers — a CLI command observing a demo that itself runs under
a test's session — well-defined: innermost wins.

Design invariant, relied on by the bit-identity tests: **no helper here
ever touches a random stream, mutates domain state, or reorders
events.** Observation is strictly passive; enabling it cannot change a
product byte or a simulated timestamp.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from contextlib import nullcontext

import numpy as np

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "ObsSession",
    "observe",
    "session",
    "enabled",
    "counter_add",
    "gauge_set",
    "declare_histogram",
    "histogram_observe",
    "histogram_observe_many",
    "span",
    "complete",
    "instant",
]


class ObsSession:
    """One observed run: a metrics registry plus a tracer."""

    __slots__ = ("registry", "tracer")

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()


_SESSION: ObsSession | None = None
_NULL_SPAN = nullcontext()


def session() -> ObsSession | None:
    """The currently installed session, or ``None`` when disabled."""
    return _SESSION


def enabled() -> bool:
    return _SESSION is not None


class observe:
    """Install a fresh (or given) session for the duration of a block."""

    def __init__(self, clock: Callable[[], float] | None = None,
                 session: ObsSession | None = None) -> None:
        self._session = session if session is not None else ObsSession(
            tracer=Tracer(clock=clock)
        )
        self._prev: ObsSession | None = None

    def __enter__(self) -> ObsSession:
        global _SESSION
        self._prev = _SESSION
        _SESSION = self._session
        return self._session

    def __exit__(self, exc_type, exc, tb) -> None:
        global _SESSION
        _SESSION = self._prev


# -- metric hooks (each: one global load + None check when disabled) -------


def counter_add(name: str, value: float = 1.0,
                labels: Mapping[str, object] | None = None) -> None:
    s = _SESSION
    if s is not None:
        s.registry.counter_add(name, value, labels)


def gauge_set(name: str, value: float,
              labels: Mapping[str, object] | None = None) -> None:
    s = _SESSION
    if s is not None:
        s.registry.gauge_set(name, value, labels)


def declare_histogram(name: str,
                      buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
    s = _SESSION
    if s is not None:
        s.registry.declare_histogram(name, buckets)


def histogram_observe(name: str, value: float,
                      labels: Mapping[str, object] | None = None) -> None:
    s = _SESSION
    if s is not None:
        s.registry.histogram_observe(name, value, labels)


def histogram_observe_many(name: str, values: Iterable[float] | np.ndarray,
                           labels: Mapping[str, object] | None = None) -> None:
    s = _SESSION
    if s is not None:
        s.registry.histogram_observe_many(name, values, labels)


# -- trace hooks -----------------------------------------------------------


def span(name: str, category: str = "", track: str = "main",
         args: Mapping[str, object] | None = None):
    """Measured span context manager; a shared no-op when disabled."""
    s = _SESSION
    if s is None:
        return _NULL_SPAN
    return s.tracer.span(name, category=category, track=track, args=args)


def complete(name: str, ts: float, dur: float, category: str = "",
             track: str = "main",
             args: Mapping[str, object] | None = None) -> None:
    s = _SESSION
    if s is not None:
        s.tracer.complete(name, ts, dur, category=category, track=track,
                          args=args)


def instant(name: str, ts: float | None = None, category: str = "",
            track: str = "main",
            args: Mapping[str, object] | None = None) -> None:
    s = _SESSION
    if s is not None:
        s.tracer.instant(name, ts, category=category, track=track, args=args)
