"""Deterministic structured tracing: nested spans over an injected clock.

A :class:`Tracer` records a flat, append-only list of events; nesting is
by time containment per *track* (a named timeline — one per DAGMan, per
portal tenant, per local phase group), exactly how Chrome's
``trace_event`` viewers reconstruct span trees.

Two ways to put time on an event:

* **measured** — ``tracer.span(...)`` samples the tracer's injected
  clock at enter/exit. The default clock is ``time.perf_counter`` (wall
  time); tests and deterministic drivers inject their own callable.
* **stated** — ``tracer.complete(name, ts, dur)`` /
  ``tracer.instant(name, ts)`` carry explicit timestamps. Every
  simulator in this repository (OSPool DES, bursting replay, the
  portal's virtual clock) emits *its own virtual time* this way, so an
  instrumented simulation run produces a byte-identical trace for a
  fixed seed: the events depend only on simulated state, never on the
  host's wall clock.

The tracer allocates one small tuple-backed record per event and reads
no global state, keeping the enabled-path cost inside the obs overhead
budget (asserted in ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping

from repro.errors import ObsError

__all__ = ["PH_COMPLETE", "PH_INSTANT", "Event", "Tracer"]

PH_COMPLETE = "X"
PH_INSTANT = "i"


class Event:
    """One recorded trace event (times in seconds, wall or virtual)."""

    __slots__ = ("phase", "name", "category", "track", "ts", "dur", "args")

    def __init__(
        self,
        phase: str,
        name: str,
        category: str,
        track: str,
        ts: float,
        dur: float,
        args: Mapping[str, object] | None,
    ) -> None:
        self.phase = phase
        self.name = name
        self.category = category
        self.track = track
        self.ts = ts
        self.dur = dur
        self.args = dict(args) if args else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event({self.phase!r}, {self.name!r}, cat={self.category!r}, "
            f"track={self.track!r}, ts={self.ts}, dur={self.dur})"
        )


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_track", "_args", "_start")

    def __init__(self, tracer: Tracer, name: str, category: str,
                 track: str, args: Mapping[str, object] | None) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._track = track
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end = tracer.clock()
        tracer.complete(
            self._name,
            self._start,
            end - self._start,
            category=self._category,
            track=self._track,
            args=self._args,
        )


class Tracer:
    """Append-only event recorder with an injected clock."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.events: list[Event] = []

    def __len__(self) -> int:
        return len(self.events)

    # -- measured spans ----------------------------------------------------

    def span(
        self,
        name: str,
        category: str = "",
        track: str = "main",
        args: Mapping[str, object] | None = None,
    ) -> _SpanHandle:
        """Context manager: clock at enter/exit, one complete event."""
        return _SpanHandle(self, name, category, track, args)

    # -- stated-time events ------------------------------------------------

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        category: str = "",
        track: str = "main",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Record a finished span with explicit start time and duration."""
        if dur < 0:
            raise ObsError(f"span {name!r}: negative duration {dur!r}")
        self.events.append(
            Event(PH_COMPLETE, name, category, track, float(ts), float(dur), args)
        )

    def instant(
        self,
        name: str,
        ts: float | None = None,
        category: str = "",
        track: str = "main",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Record a point-in-time marker (clock sampled when ``ts=None``)."""
        stamp = self.clock() if ts is None else float(ts)
        self.events.append(Event(PH_INSTANT, name, category, track, stamp, 0.0, args))

    def tracks(self) -> list[str]:
        """Track names in first-appearance order (stable tid mapping)."""
        seen: dict[str, None] = {}
        for ev in self.events:
            seen.setdefault(ev.track, None)
        return list(seen)
