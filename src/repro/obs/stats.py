"""Shared percentile/summary math for every stats surface.

Before this module, p50/p99 computations were hand-rolled in three
places (the portal service's ``wait_percentile``, the portal bench, and
the job-timeline bench) with subtly different index conventions. This is
the single implementation: **nearest-rank on the sorted sample**, index
``round(p / 100 * (n - 1))`` — the convention the portal service
shipped with and its tests pin.

Deliberately NOT the same as ``np.percentile``'s default linear
interpolation: these helpers answer "which observed value sat at that
rank", which is what queue-wait and makespan reporting wants (an actual
job's wait, not a synthetic blend of two).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ObsError

__all__ = ["percentile", "percentiles"]


def percentiles(
    values: Sequence[float] | np.ndarray,
    ps: Iterable[float],
) -> list[float]:
    """Nearest-rank percentiles of ``values`` at each ``p`` in ``ps``.

    Empty input returns ``0.0`` for every requested percentile (the
    "no observations yet" convention every caller already used). A ``p``
    outside ``[0, 100]`` raises :class:`~repro.errors.ObsError`.
    """
    requested = [float(p) for p in ps]
    for p in requested:
        if not 0.0 <= p <= 100.0:
            raise ObsError(f"percentile must be in [0, 100], got {p}")
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        return [0.0 for _ in requested]
    ordered = np.sort(arr)
    n = ordered.size
    # int(round(...)) — not int(...) — so p=50 of an even-sized sample
    # picks the upper middle element, matching the service's pinned
    # wait_percentile behaviour.
    return [float(ordered[int(round(p / 100.0 * (n - 1)))]) for p in requested]


def percentile(values: Sequence[float] | np.ndarray, p: float) -> float:
    """Scalar convenience wrapper over :func:`percentiles`."""
    return percentiles(values, (p,))[0]
