"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, human summary.

Three views of one observed run:

* :func:`chrome_trace` / :func:`dump_chrome_trace` — the Chrome
  ``trace_event`` JSON object format (``{"traceEvents": [...]}``),
  loadable in ``about:tracing`` and Perfetto. Tracks become named
  threads (one per DAGMan, per portal tenant); times are exported in
  microseconds as the format requires.
* :func:`prometheus_text` / :func:`parse_prometheus_text` — the
  Prometheus text exposition format for the metrics registry, plus a
  strict parser used by the round-trip tests and the CI smoke step.
* :func:`render_summary` — a terminal digest built on
  :mod:`repro.reporting` (tables + sparklines), behind
  ``repro obs summary``.

Every exporter is deterministic: series sorted, label order canonical,
floats formatted by ``repr`` — so a byte-identical trace/registry in
produces byte-identical text out.
"""

from __future__ import annotations

import json
import re
from collections.abc import Mapping

from repro.errors import ObsError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import PH_COMPLETE, PH_INSTANT, Tracer
from repro.reporting import render_table, sparkline

__all__ = [
    "chrome_trace",
    "dump_chrome_trace",
    "validate_chrome_trace",
    "prometheus_text",
    "parse_prometheus_text",
    "render_summary",
    "service_timeline",
]


# -- Chrome trace_event ----------------------------------------------------


def chrome_trace(tracer: Tracer) -> dict:
    """Convert a tracer's events into a Chrome trace_event JSON object.

    Tracks map to thread ids in first-appearance order and are named via
    ``thread_name`` metadata events, so Perfetto shows ``dagman:fdw64``
    or ``tenant:uw-seismo`` instead of bare tids.
    """
    tid_of = {track: i + 1 for i, track in enumerate(tracer.tracks())}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for track, tid in tid_of.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        })
    for ev in tracer.events:
        rec: dict = {
            "name": ev.name,
            "cat": ev.category or "repro",
            "ph": ev.phase,
            "pid": 1,
            "tid": tid_of[ev.track],
            "ts": round(ev.ts * 1e6, 3),
        }
        if ev.phase == PH_COMPLETE:
            rec["dur"] = round(ev.dur * 1e6, 3)
        elif ev.phase == PH_INSTANT:
            rec["s"] = "t"
        if ev.args:
            rec["args"] = ev.args
        events.append(rec)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(tracer: Tracer) -> str:
    """Canonical (byte-stable) JSON text of :func:`chrome_trace`."""
    return json.dumps(
        chrome_trace(tracer), sort_keys=True, separators=(",", ":")
    ) + "\n"


_VALID_PHASES = {"X", "i", "M", "B", "E", "C"}


def validate_chrome_trace(doc: object) -> int:
    """Schema-check a parsed Chrome trace; returns the event count.

    Used by the exporter round-trip tests and the CI trace-export smoke
    step. Raises :class:`~repro.errors.ObsError` with the offending
    event index on the first violation.
    """
    if not isinstance(doc, Mapping) or "traceEvents" not in doc:
        raise ObsError("not a Chrome trace: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ObsError("'traceEvents' must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping):
            raise ObsError(f"event {i}: not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                raise ObsError(f"event {i}: missing {field!r}")
        if ev["ph"] not in _VALID_PHASES:
            raise ObsError(f"event {i}: unknown phase {ev['ph']!r}")
        if ev["ph"] in ("X", "i") and not isinstance(
            ev.get("ts"), (int, float)
        ):
            raise ObsError(f"event {i}: missing numeric 'ts'")
        if ev["ph"] == "X" and not isinstance(ev.get("dur"), (int, float)):
            raise ObsError(f"event {i}: complete event missing 'dur'")
    return len(events)


# -- portal service timeline (satellite: queue_trace -> tracer) ------------


def service_timeline(trace_events, results=(), tracer: Tracer | None = None) -> Tracer:
    """Convert a :meth:`PortalService.queue_trace` into trace spans.

    The service emits *metrics* live during dispatch; the per-tenant
    *timeline* is reconstructed here after the fact from the audit trace
    (so no event is recorded twice). Each tenant becomes one track:
    submissions and coalescing hits are instant markers, and every
    distinct execution becomes one complete span from its ``start`` to
    its ``finish``/``fail`` event on the owning tenant's track.
    ``results`` (an iterable of ``ServiceResult``) enriches span args
    with the backend that served each run.

    The returned tracer carries the service's *virtual* timestamps
    verbatim, so a seeded demo replays to a byte-identical timeline.
    """
    tracer = tracer if tracer is not None else Tracer()
    backend_of: dict[str, str] = {}
    ticket_entry: dict[str, str] = {}
    for ev in trace_events:
        if ev.ticket_id:
            ticket_entry[ev.ticket_id] = ev.entry_id
    for res in results:
        entry_id = ticket_entry.get(res.ticket_id)
        if entry_id is not None:
            backend_of[entry_id] = res.backend
    started: dict[str, tuple[float, str]] = {}
    for ev in sorted(trace_events, key=lambda e: e.seq):
        track = f"tenant:{ev.tenant}"
        if ev.event in ("submit", "coalesce"):
            tracer.instant(
                f"{ev.event}:{ev.ticket_id}",
                ts=ev.time,
                category="portal",
                track=track,
                args={"entry": ev.entry_id},
            )
        elif ev.event == "start":
            started[ev.entry_id] = (ev.time, track)
        elif ev.event in ("finish", "fail"):
            start = started.pop(ev.entry_id, None)
            if start is None:
                raise ObsError(
                    f"queue trace: {ev.event!r} for {ev.entry_id!r} "
                    f"without a matching 'start'"
                )
            t0, track0 = start
            args: dict[str, object] = {"outcome": ev.event}
            backend = backend_of.get(ev.entry_id)
            if backend is not None:
                args["backend"] = backend
            tracer.complete(
                f"run:{ev.entry_id}",
                ts=t0,
                dur=max(0.0, ev.time - t0),
                category="portal",
                track=track0,
                args=args,
            )
    return tracer


# -- Prometheus text exposition --------------------------------------------


def _fmt_value(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    snap = registry.snapshot()
    for name, entry in snap.items():
        kind = entry["type"]
        lines.append(f"# TYPE {name} {kind}")
        for series in entry["series"]:
            labels = series["labels"]
            if kind == "histogram":
                cum = 0
                for bound, count in zip(series["buckets"], series["counts"]):
                    cum += count
                    le = dict(labels)
                    le["le"] = _fmt_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_render_labels(le)} {cum}"
                    )
                cum += series["counts"][-1]
                inf = dict(labels)
                inf["le"] = "+Inf"
                lines.append(f"{name}_bucket{_render_labels(inf)} {cum}")
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_fmt_value(series['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {series['count']}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_fmt_value(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? ([^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(v: str) -> str:
    return v.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_prometheus_text(text: str) -> dict:
    """Strict parse of exposition text back into ``{"types", "samples"}``.

    ``samples`` maps ``(sample_name, ((label, value), ...))`` to a
    float. Raises :class:`~repro.errors.ObsError` on any malformed line
    — this is the round-trip check, not a lenient scraper.
    """
    types: dict[str, str] = {}
    samples: dict[tuple[str, tuple], float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            m = _TYPE_RE.match(line)
            if m:
                types[m.group(1)] = m.group(2)
                continue
            if line.startswith("# HELP"):
                continue
            raise ObsError(f"line {lineno}: malformed comment {raw!r}")
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ObsError(f"line {lineno}: malformed sample {raw!r}")
        name, label_body, value_text = m.groups()
        labels: list[tuple[str, str]] = []
        if label_body:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_body):
                labels.append((pair.group(1), _unescape_label(pair.group(2))))
                consumed = pair.end()
                if consumed < len(label_body) and label_body[consumed] == ",":
                    consumed += 1
            if consumed != len(label_body):
                raise ObsError(f"line {lineno}: malformed labels {raw!r}")
        try:
            if value_text == "+Inf":
                value = float("inf")
            elif value_text == "-Inf":
                value = float("-inf")
            else:
                value = float(value_text)
        except ValueError as exc:
            raise ObsError(f"line {lineno}: bad value {value_text!r}") from exc
        key = (name, tuple(sorted(labels)))
        if key in samples:
            raise ObsError(f"line {lineno}: duplicate sample {raw!r}")
        samples[key] = value
    return {"types": types, "samples": samples}


# -- human summary ---------------------------------------------------------


def _histograms_from_samples(parsed: Mapping) -> dict:
    """Rebuild per-series histograms from parsed exposition samples."""
    hists: dict[tuple[str, tuple], dict] = {}
    for (name, labels), value in parsed["samples"].items():
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and parsed["types"].get(base) == "histogram":
                plain = tuple(kv for kv in labels if kv[0] != "le")
                h = hists.setdefault(
                    (base, plain), {"buckets": [], "sum": 0.0, "count": 0}
                )
                if suffix == "_bucket":
                    le = dict(labels)["le"]
                    bound = float("inf") if le == "+Inf" else float(le)
                    h["buckets"].append((bound, value))
                elif suffix == "_sum":
                    h["sum"] = value
                else:
                    h["count"] = int(value)
                break
    for h in hists.values():
        h["buckets"].sort(key=lambda bc: bc[0])
    return hists


def render_summary(trace_doc: Mapping | None,
                   metrics_text: str | None = None) -> str:
    """Terminal digest of an exported trace and/or metrics snapshot."""
    sections: list[str] = []

    if trace_doc is not None:
        n_events = validate_chrome_trace(trace_doc)
        spans: dict[tuple[str, str], list[float]] = {}
        instants: dict[tuple[str, str], int] = {}
        for ev in trace_doc["traceEvents"]:
            key = (ev.get("cat", "repro"), ev["name"])
            if ev["ph"] == "X":
                spans.setdefault(key, []).append(float(ev["dur"]) / 1e3)
            elif ev["ph"] == "i":
                instants[key] = instants.get(key, 0) + 1
        sections.append(f"trace: {n_events} events")
        if spans:
            rows = [
                [cat, name, len(durs), sum(durs), sum(durs) / len(durs)]
                for (cat, name), durs in sorted(spans.items())
            ]
            sections.append("spans (durations in ms):")
            sections.append(render_table(
                ["category", "span", "n", "total_ms", "mean_ms"], rows,
                precision=3,
            ))
        if instants:
            rows = [[cat, name, n] for (cat, name), n in sorted(instants.items())]
            sections.append("instant markers:")
            sections.append(render_table(["category", "marker", "n"], rows))

    if metrics_text is not None:
        parsed = parse_prometheus_text(metrics_text)
        scalar_rows = [
            [parsed["types"][name], name + _render_labels(dict(labels)),
             float(value)]
            for (name, labels), value in sorted(parsed["samples"].items())
            if parsed["types"].get(name) in ("counter", "gauge")
        ]
        if scalar_rows:
            sections.append("counters / gauges:")
            sections.append(render_table(["type", "series", "value"],
                                         scalar_rows, precision=3))
        hists = _histograms_from_samples(parsed)
        if hists:
            rows = []
            for (name, labels), h in sorted(hists.items()):
                counts = [c for _, c in h["buckets"]]
                # de-cumulate for the shape strip
                per_bucket = [counts[0]] + [
                    counts[i] - counts[i - 1] for i in range(1, len(counts))
                ] if counts else []
                mean = h["sum"] / h["count"] if h["count"] else 0.0
                rows.append([
                    name + _render_labels(dict(labels)),
                    h["count"], h["sum"], mean, sparkline(per_bucket, width=16),
                ])
            sections.append("histograms (bucket-shape strip, light→dark):")
            sections.append(render_table(
                ["series", "n", "sum", "mean", "shape"], rows, precision=3,
            ))

    if not sections:
        return "nothing to summarize (no trace, no metrics)\n"
    return "\n".join(sections) + "\n"
