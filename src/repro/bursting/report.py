"""Bursting simulation output: detailed report + per-second CSV.

Paper §3.1: "statistics are computed and reported in detailed output,
and a .csv file is generated with the simulation's instantaneous
throughput for each runtime second."
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.bursting.simulator import BurstingResult
from repro.obs.stats import percentiles
from repro.units import format_duration

__all__ = ["render_report", "write_throughput_csv", "read_throughput_csv"]


def render_report(result: BurstingResult) -> str:
    """Human-readable summary of one bursting simulation."""
    series = result.throughput_series_jpm
    lines = [
        f"=== VDC bursting simulation: batch {result.batch} ===",
        f"jobs: {result.n_jobs} total, {result.n_bursted} bursted "
        f"({result.vdc_usage_percent:.1f}% on VDC)",
        "bursts by policy: "
        + (
            ", ".join(f"{k}={v}" for k, v in sorted(result.bursts_by_policy.items()))
            or "none (control)"
        ),
        f"runtime: {format_duration(result.runtime_s)} "
        f"(original {format_duration(result.original_runtime_s)}, "
        f"{result.runtime_reduction_percent:+.1f}% reduction)",
        f"average instant throughput: "
        f"{result.average_instant_throughput_jpm:.2f} jobs/min "
        f"(max {float(np.max(series)):.2f}, min {float(np.min(series)):.2f})",
        "throughput percentiles: p50={:.2f}, p99={:.2f} jobs/min".format(
            *percentiles(series, (50.0, 99.0))
        ),
        f"cloud time: {result.cloud_seconds / 60.0:.1f} minutes, "
        f"cost ${result.cost_usd:.2f}",
    ]
    return "\n".join(lines)


def write_throughput_csv(result: BurstingResult, path: str | Path) -> Path:
    """Write the per-second instant-throughput series."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["second", "instant_throughput_jpm"])
        for second, value in enumerate(result.throughput_series_jpm, start=1):
            writer.writerow([second, f"{value:.6f}"])
    return path


def read_throughput_csv(path: str | Path) -> np.ndarray:
    """Read a series written by :func:`write_throughput_csv`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"throughput csv not found: {path}")
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["second", "instant_throughput_jpm"]:
            raise TraceError(f"{path}: bad header {header!r}")
        values = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise TraceError(f"{path}: line {lineno}: bad row {row!r}")
            try:
                values.append(float(row[1]))
            except ValueError:
                raise TraceError(
                    f"{path}: line {lineno}: non-numeric throughput value {row[1]!r}"
                ) from None
    if not values:
        raise TraceError(f"{path}: no data rows")
    return np.asarray(values)
