"""Simulated VDC/cloud job execution and cost.

Paper §3.1.1: offloaded jobs complete in a *constant* time measured on
the reference AWS machine — 287 seconds for rupture (Phase A) jobs and
144 seconds for waveform (Phase C) jobs. §4.3 prices cloud minutes at
$0.0017/minute (EC2 a1.xlarge on-demand). Both constants are kept
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError
from repro.core.stats import EC2_A1_XLARGE_USD_PER_MINUTE, bursting_cost_usd

__all__ = ["CloudJobModel", "RUPTURE_CLOUD_SECONDS", "WAVEFORM_CLOUD_SECONDS"]

#: Constant simulated completion time of a bursted rupture (A) job.
RUPTURE_CLOUD_SECONDS = 287.0

#: Constant simulated completion time of a bursted waveform (C) job.
WAVEFORM_CLOUD_SECONDS = 144.0


@dataclass(frozen=True)
class CloudJobModel:
    """Cloud execution/cost model for bursted jobs.

    Attributes
    ----------
    rupture_seconds / waveform_seconds:
        Constant completion times by job phase.
    usd_per_minute:
        On-demand price per cloud minute.
    burstable_phases:
        Phases eligible for offloading. The paper bursts rupture and
        waveform jobs; the single B job and the distance bootstrap stay
        on OSG.
    """

    rupture_seconds: float = RUPTURE_CLOUD_SECONDS
    waveform_seconds: float = WAVEFORM_CLOUD_SECONDS
    usd_per_minute: float = EC2_A1_XLARGE_USD_PER_MINUTE
    burstable_phases: tuple[str, ...] = ("A", "C")

    def __post_init__(self) -> None:
        if self.rupture_seconds <= 0 or self.waveform_seconds <= 0:
            raise PolicyError("cloud completion times must be positive")
        if self.usd_per_minute < 0:
            raise PolicyError("cloud price must be non-negative")
        if not self.burstable_phases:
            raise PolicyError("at least one phase must be burstable")

    def is_burstable(self, phase: str) -> bool:
        """True when jobs of ``phase`` may be offloaded."""
        return phase in self.burstable_phases

    def duration_s(self, phase: str) -> float:
        """Cloud completion time for a job of ``phase``.

        Raises
        ------
        PolicyError
            For phases that are not burstable.
        """
        if phase == "A":
            return self.rupture_seconds
        if phase == "C":
            return self.waveform_seconds
        raise PolicyError(f"phase {phase!r} is not burstable")

    def cost_usd(self, cloud_seconds: float) -> float:
        """Eq. (7): price of the consumed cloud time."""
        return bursting_cost_usd(cloud_seconds / 60.0, self.usd_per_minute)
