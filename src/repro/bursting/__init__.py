"""The VDC bursting simulator (paper §3.1) and its three policies.

Replays a traced DAGMan batch second by second and simulates offloading
("bursting") selected OSG jobs to VDC/cloud resources:

* :mod:`repro.bursting.cloud` — the simulated cloud job model (constant
  completion times: 287 s rupture / 144 s waveform) and the EC2 cost
  model,
* :mod:`repro.bursting.policies` — Policy 1 (low-throughput probe),
  Policy 2 (queue-time cap), Policy 3 (submission-gap cap),
* :mod:`repro.bursting.simulator` — the per-second replay loop,
* :mod:`repro.bursting.report` — detailed output and the per-second
  instant-throughput CSV.
"""

from repro.bursting.cloud import CloudJobModel
from repro.bursting.policies import (
    ElasticPolicy,
    LowThroughputPolicy,
    QueueTimePolicy,
    SubmissionGapPolicy,
)
from repro.bursting.report import render_report, write_throughput_csv
from repro.bursting.simulator import BurstingResult, BurstingSimulator

__all__ = [
    "BurstingResult",
    "BurstingSimulator",
    "CloudJobModel",
    "ElasticPolicy",
    "LowThroughputPolicy",
    "QueueTimePolicy",
    "SubmissionGapPolicy",
    "render_report",
    "write_throughput_csv",
]
