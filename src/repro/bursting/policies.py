"""The three OSG-tailored bursting policies (paper §3.1.2).

Policies observe the replay state once per simulated second through a
narrow :class:`PolicyView` and answer two kinds of bursting requests:

* *burst the last unsubmitted OSG job for the phase* (Policies 1 and 3),
* *remove a specific queued job and burst it* (Policy 2).

Each policy is a small, independently testable object; the simulator
composes any subset of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import PolicyError

__all__ = [
    "PolicyView",
    "BurstRequest",
    "BurstingPolicy",
    "LowThroughputPolicy",
    "QueueTimePolicy",
    "SubmissionGapPolicy",
    "ElasticPolicy",
]


class PolicyView(Protocol):
    """What a policy may observe about the replay at the current second."""

    @property
    def now_s(self) -> float:
        """Seconds since batch submission."""
        ...

    @property
    def instant_throughput_jpm(self) -> float:
        """Paper eq. (5) at the current second."""
        ...

    @property
    def oldest_queued_wait_s(self) -> float | None:
        """Queue age of the longest-waiting idle burstable job, or None."""
        ...

    @property
    def last_submission_age_s(self) -> float | None:
        """Seconds since the most recent job submission, or None if no
        job has been submitted yet."""
        ...

    @property
    def has_unsubmitted_burstable(self) -> bool:
        """True while tail jobs remain available to burst."""
        ...


@dataclass(frozen=True)
class BurstRequest:
    """A policy's decision for this second.

    ``kind`` is ``"tail"`` (burst the last unsubmitted job of the
    phase) or ``"queued"`` (remove the longest-waiting queued job and
    burst it).
    """

    kind: str
    policy: str

    def __post_init__(self) -> None:
        if self.kind not in ("tail", "queued"):
            raise PolicyError(f"unknown burst request kind {self.kind!r}")


class BurstingPolicy(Protocol):
    """Common policy interface."""

    name: str

    def evaluate(self, view: PolicyView) -> BurstRequest | None:
        """Return a burst request for this second, or None."""
        ...


@dataclass
class LowThroughputPolicy:
    """Policy 1: respond to low instant throughput.

    Every ``probe_s`` seconds, compare the batch's instant throughput
    against ``threshold_jpm``; when below, burst the last unsubmitted
    OSG job for the phase. Offloading is *disarmed* until the threshold
    is first reached (§4.3: "preventing job-offloading until the
    threshold was met"), so the initial ramp-up does not trigger a
    burst storm.
    """

    probe_s: float = 10.0
    threshold_jpm: float = 34.0
    name: str = "policy1"

    def __post_init__(self) -> None:
        if self.probe_s < 1.0:
            raise PolicyError(f"probe_s must be >= 1 s, got {self.probe_s}")
        if self.threshold_jpm <= 0:
            raise PolicyError(f"threshold must be positive, got {self.threshold_jpm}")
        self._armed = False
        self._next_probe = self.probe_s

    def evaluate(self, view: PolicyView) -> BurstRequest | None:
        if view.now_s < self._next_probe:
            return None
        self._next_probe = view.now_s + self.probe_s
        omega = view.instant_throughput_jpm
        if not self._armed:
            if omega >= self.threshold_jpm:
                self._armed = True
            return None
        if omega < self.threshold_jpm and view.has_unsubmitted_burstable:
            return BurstRequest(kind="tail", policy=self.name)
        return None


@dataclass
class QueueTimePolicy:
    """Policy 2: respond to congested queues.

    Checks the longest-waiting queued job each second; when its wait
    exceeds ``max_queue_s``, it is removed from the OSG queue and
    bursted.
    """

    max_queue_s: float = 90.0 * 60.0
    name: str = "policy2"

    def __post_init__(self) -> None:
        if self.max_queue_s <= 0:
            raise PolicyError(f"max_queue_s must be positive, got {self.max_queue_s}")

    def evaluate(self, view: PolicyView) -> BurstRequest | None:
        wait = view.oldest_queued_wait_s
        if wait is not None and wait > self.max_queue_s:
            return BurstRequest(kind="queued", policy=self.name)
        return None


@dataclass
class SubmissionGapPolicy:
    """Policy 3: respond to gaps in job submissions.

    When more than ``max_gap_s`` has passed since the most recent job
    was added to the queue, periodically (every ``probe_s``) burst the
    last unsubmitted job in the phase.
    """

    max_gap_s: float = 10.0 * 60.0
    probe_s: float = 30.0
    name: str = "policy3"

    def __post_init__(self) -> None:
        if self.max_gap_s <= 0:
            raise PolicyError(f"max_gap_s must be positive, got {self.max_gap_s}")
        if self.probe_s < 1.0:
            raise PolicyError(f"probe_s must be >= 1 s, got {self.probe_s}")
        self._next_probe = 0.0

    def evaluate(self, view: PolicyView) -> BurstRequest | None:
        if view.now_s < self._next_probe:
            return None
        age = view.last_submission_age_s
        if age is not None and age > self.max_gap_s and view.has_unsubmitted_burstable:
            self._next_probe = view.now_s + self.probe_s
            return BurstRequest(kind="tail", policy=self.name)
        return None


@dataclass
class ElasticPolicy:
    """Elastic bursting (the paper's §6 outlook).

    The paper closes by aiming for "a comprehensive, elastic algorithm
    for bursting OSG jobs to VDC resources ... scaling utilized VDC
    resources based on OSG's common resources". This policy implements
    that outline: it maintains an exponentially-smoothed estimate of the
    batch's instant throughput and adapts its own bursting *rate* —
    bursting faster the further throughput falls below the target, and
    standing down entirely while OSG keeps up.

    Parameters
    ----------
    target_jpm:
        Desired batch throughput.
    min_interval_s / max_interval_s:
        Bounds on the adaptive time between bursts.
    smoothing:
        EWMA coefficient in (0, 1]; higher reacts faster.
    """

    target_jpm: float = 34.0
    min_interval_s: float = 2.0
    max_interval_s: float = 300.0
    smoothing: float = 0.2
    name: str = "elastic"

    def __post_init__(self) -> None:
        if self.target_jpm <= 0:
            raise PolicyError(f"target must be positive, got {self.target_jpm}")
        if not (0.0 < self.smoothing <= 1.0):
            raise PolicyError(f"smoothing must be in (0, 1], got {self.smoothing}")
        if not (0.0 < self.min_interval_s <= self.max_interval_s):
            raise PolicyError(
                f"need 0 < min_interval <= max_interval, got "
                f"{self.min_interval_s}/{self.max_interval_s}"
            )
        self._ewma = 0.0
        self._armed = False
        self._next_burst = 0.0

    def evaluate(self, view: PolicyView) -> BurstRequest | None:
        omega = view.instant_throughput_jpm
        self._ewma = self.smoothing * omega + (1.0 - self.smoothing) * self._ewma
        if not self._armed:
            if self._ewma >= self.target_jpm:
                self._armed = True
            return None
        deficit = max(0.0, 1.0 - self._ewma / self.target_jpm)  # 0 = on target
        if deficit == 0.0 or not view.has_unsubmitted_burstable:
            return None
        if view.now_s < self._next_burst:
            return None
        # Interval shrinks linearly with the deficit: a 100% deficit
        # bursts every min_interval, a marginal one every max_interval.
        interval = self.max_interval_s - deficit * (
            self.max_interval_s - self.min_interval_s
        )
        self._next_burst = view.now_s + interval
        return BurstRequest(kind="tail", policy=self.name)
