"""The VDC bursting replay simulator (paper §3.1.1).

The main loop "iterates through each second of a DAGMan run analyzing
OSG job times to detect completion" while the policies decide which jobs
to offload. The replay semantics:

* a non-bursted job completes exactly when the trace says it did;
* a *tail* burst removes the not-yet-submitted trace job with the
  latest submission time (phases A/C only) and runs it on VDC starting
  now;
* a *queued* burst removes the longest-waiting currently-idle burstable
  job from the OSG queue and runs it on VDC starting now;
* a VDC job completes after the constant phase time (287 s / 144 s);
* the batch ends when every job (OSG or VDC) has completed — bursting
  the tail is what shortens the makespan.

The per-second loop is O(1) amortized per second + per event (sorted
pointers, an idle heap, and a VDC completion heap), so multi-hour
batches replay in well under a second.

The replay is additionally *event-driven between policy-relevant
seconds* (``run(event_driven=True)``, the default): whenever no policy
can possibly fire — no policies configured, or the burst cap already
reached — the loop jumps straight to the next second at which
``completed`` can change (a trace end event or a VDC completion) and
fills the skipped seconds of the throughput series analytically with
the exact same float expression the per-second update uses. The series
and the full :class:`BurstingResult` are bit-identical to the
per-second loop (``event_driven=False``), which is kept as the
reference arm and asserted against in the regression tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import PolicyError, TraceError
from repro.bursting.cloud import CloudJobModel
from repro.bursting.policies import BurstingPolicy, BurstRequest
from repro.core.stats import average_instant_throughput
from repro.core.traces import BatchTrace, JobTrace

__all__ = ["BurstingResult", "BurstingSimulator"]


@dataclass(frozen=True)
class BurstingResult:
    """Everything §5.3 reports for one bursting simulation."""

    batch: str
    runtime_s: float
    original_runtime_s: float
    n_jobs: int
    n_bursted: int
    bursts_by_policy: dict[str, int]
    cloud_seconds: float
    cost_usd: float
    throughput_series_jpm: np.ndarray = field(repr=False)

    @property
    def average_instant_throughput_jpm(self) -> float:
        """Eq. (6) over the per-second series."""
        return average_instant_throughput(self.throughput_series_jpm)

    @property
    def vdc_usage_percent(self) -> float:
        """Share of jobs executed on VDC instead of OSG, in percent."""
        return 100.0 * self.n_bursted / self.n_jobs

    @property
    def runtime_reduction_percent(self) -> float:
        """Makespan improvement over the original OSG run, in percent."""
        return 100.0 * (1.0 - self.runtime_s / self.original_runtime_s)


class _ReplayState:
    """Mutable per-second replay state; doubles as the policies' view."""

    def __init__(self, trace: BatchTrace, cloud: CloudJobModel) -> None:
        self.cloud = cloud
        self.t0 = trace.submit_s
        self.by_submit: list[JobTrace] = sorted(
            trace.jobs, key=lambda j: (j.submit_s, j.node)
        )
        self.by_start: list[JobTrace] = sorted(self.by_submit, key=lambda j: j.start_s)
        self.by_end: list[JobTrace] = sorted(self.by_submit, key=lambda j: j.end_s)
        self.n_jobs = len(self.by_submit)
        self.submit_ptr = 0
        self.start_ptr = 0
        self.end_ptr = 0
        self.tail_ptr = self.n_jobs - 1
        self.started_nodes: set[str] = set()
        self.bursted: set[str] = set()
        self.idle_heap: list[tuple[float, int]] = []  # (submit_s, by_submit index)
        self.vdc_heap: list[float] = []  # relative completion times
        self.completed = 0
        self.now_s = 0.0
        self.instant_throughput_jpm = 0.0

    # -- per-second event processing --------------------------------------

    def advance_to(self, now: float) -> None:
        """Process all trace events with timestamps <= t0 + now.

        Raises
        ------
        TraceError
            If ``now <= 0``: the instant-throughput update divides by
            ``now``, so second 0 is not a valid replay instant (the run
            loop always starts at second 1).
        """
        if now <= 0.0:
            raise TraceError(f"advance_to requires now > 0, got {now}")
        self.now_s = now
        abs_now = self.t0 + now
        while (
            self.submit_ptr < self.n_jobs
            and self.by_submit[self.submit_ptr].submit_s <= abs_now
        ):
            job = self.by_submit[self.submit_ptr]
            if job.node not in self.bursted and self.cloud.is_burstable(job.phase):
                heapq.heappush(self.idle_heap, (job.submit_s, self.submit_ptr))
            self.submit_ptr += 1
        while (
            self.start_ptr < self.n_jobs
            and self.by_start[self.start_ptr].start_s <= abs_now
        ):
            job = self.by_start[self.start_ptr]
            if job.node not in self.bursted:
                self.started_nodes.add(job.node)
            self.start_ptr += 1
        while (
            self.end_ptr < self.n_jobs and self.by_end[self.end_ptr].end_s <= abs_now
        ):
            if self.by_end[self.end_ptr].node not in self.bursted:
                self.completed += 1
            self.end_ptr += 1
        while self.vdc_heap and self.vdc_heap[0] <= now:
            heapq.heappop(self.vdc_heap)
            self.completed += 1
        self.instant_throughput_jpm = self.completed / (now / 60.0)

    def next_completion_event_s(self) -> float | None:
        """Relative time of the next event that can change ``completed``.

        Only trace end events and VDC completions move the counter;
        submit/start events merely update the policies' queue view, so
        when no policy can fire the replay may skip straight past them.
        ``None`` when nothing is pending (an inconsistent trace).
        """
        candidates: list[float] = []
        if self.end_ptr < self.n_jobs:
            candidates.append(self.by_end[self.end_ptr].end_s - self.t0)
        if self.vdc_heap:
            candidates.append(self.vdc_heap[0])
        return min(candidates) if candidates else None

    # -- policy view properties -----------------------------------------------

    def _queue_head(self) -> tuple[float, int] | None:
        """Oldest idle burstable job still in the OSG queue."""
        while self.idle_heap:
            submit_s, idx = self.idle_heap[0]
            node = self.by_submit[idx].node
            if node in self.bursted or node in self.started_nodes:
                heapq.heappop(self.idle_heap)
                continue
            return submit_s, idx
        return None

    @property
    def oldest_queued_wait_s(self) -> float | None:
        """Queue age of the longest-waiting idle burstable job."""
        head = self._queue_head()
        if head is None:
            return None
        return (self.t0 + self.now_s) - head[0]

    @property
    def last_submission_age_s(self) -> float | None:
        """Seconds since the most recent OSG submission."""
        if self.submit_ptr == 0:
            return None
        return (self.t0 + self.now_s) - self.by_submit[self.submit_ptr - 1].submit_s

    def _tail_candidate(self) -> int | None:
        """Index of the last unsubmitted burstable job, advancing the
        persistent tail pointer past consumed entries."""
        while self.tail_ptr >= self.submit_ptr:
            job = self.by_submit[self.tail_ptr]
            if job.node not in self.bursted and self.cloud.is_burstable(job.phase):
                return self.tail_ptr
            self.tail_ptr -= 1
        return None

    @property
    def has_unsubmitted_burstable(self) -> bool:
        """True while tail jobs remain available to burst."""
        return self._tail_candidate() is not None

    # -- burst resolution -------------------------------------------------------

    def take_for_burst(self, request: BurstRequest) -> JobTrace | None:
        """Resolve a burst request to a concrete job and consume it."""
        if request.kind == "tail":
            idx = self._tail_candidate()
            if idx is None:
                return None
            job = self.by_submit[idx]
        else:  # queued
            head = self._queue_head()
            if head is None:
                return None
            heapq.heappop(self.idle_heap)
            job = self.by_submit[head[1]]
        self.bursted.add(job.node)
        return job


class BurstingSimulator:
    """Replay one traced batch under a set of bursting policies.

    Parameters
    ----------
    trace:
        The batch to replay (from :func:`repro.core.traces.read_traces`
        or exported directly from a pool run).
    policies:
        Policy objects evaluated each second, in order. An empty list
        replays the control (pure OSG) behaviour.
    cloud:
        Cloud execution/cost model.
    max_burst_fraction:
        Optional cap on the fraction of jobs that may be bursted (the
        paper's cost experiment enforces 0.30); ``None`` is uncapped.
    """

    def __init__(
        self,
        trace: BatchTrace,
        policies: list[BurstingPolicy] | None = None,
        cloud: CloudJobModel | None = None,
        max_burst_fraction: float | None = None,
    ) -> None:
        self.trace = trace
        self.policies = list(policies or [])
        names = [p.name for p in self.policies]
        if len(set(names)) != len(names):
            raise PolicyError(f"duplicate policy names: {names}")
        self.cloud = cloud or CloudJobModel()
        if max_burst_fraction is not None and not (0.0 <= max_burst_fraction <= 1.0):
            raise PolicyError(
                f"max_burst_fraction must be in [0, 1], got {max_burst_fraction}"
            )
        self.max_burst_fraction = max_burst_fraction

    def run(self, event_driven: bool = True) -> BurstingResult:
        """Execute the replay; returns the result bundle.

        With ``event_driven=True`` (default) the loop skips ahead
        between policy-relevant seconds (see module docstring); the
        result is bit-identical to ``event_driven=False``, the
        reference per-second loop.
        """
        state = _ReplayState(self.trace, self.cloud)
        n_jobs = state.n_jobs
        max_bursts = (
            n_jobs
            if self.max_burst_fraction is None
            else int(np.floor(self.max_burst_fraction * n_jobs))
        )
        bursts_by_policy = {p.name: 0 for p in self.policies}
        n_bursted = 0
        cloud_seconds = 0.0
        series: list[float] = []
        now = 0.0
        horizon = (
            self.trace.runtime_s
            + max(self.cloud.rupture_seconds, self.cloud.waveform_seconds)
            + 2.0
        )

        while state.completed < n_jobs:
            if event_driven and (not self.policies or n_bursted >= max_bursts):
                # No policy can fire from here on this second range, so
                # nothing observable changes until the next completion
                # event. Fill the series analytically up to (not
                # including) the second that processes it; stateful
                # policies are never skipped past (they must see every
                # second to update their estimators).
                nxt = state.next_completion_event_s()
                if nxt is None:
                    stop = np.floor(horizon) + 1.0  # run into the horizon check
                else:
                    stop = max(float(np.ceil(nxt)), now + 1.0)
                s = now + 1.0
                while s < stop and s <= horizon:
                    # identical float expression to advance_to's update
                    series.append(state.completed / (s / 60.0))
                    s += 1.0
                now = s - 1.0
            now += 1.0
            if now > horizon:
                raise TraceError(
                    f"bursting replay exceeded horizon {horizon}s; inconsistent trace?"
                )
            state.advance_to(now)
            series.append(state.instant_throughput_jpm)
            if n_bursted >= max_bursts:
                continue
            for policy in self.policies:
                request = policy.evaluate(state)
                if request is None:
                    continue
                job = state.take_for_burst(request)
                if job is None:
                    continue
                n_bursted += 1
                bursts_by_policy[request.policy] += 1
                duration = self.cloud.duration_s(job.phase)
                cloud_seconds += duration
                heapq.heappush(state.vdc_heap, now + duration)
                if obs.enabled():
                    # Provision -> terminate in the replay's virtual
                    # clock: the burst span starts the second the policy
                    # fires and ends at the constant VDC phase time.
                    obs.complete(
                        f"burst:{job.node}",
                        ts=now,
                        dur=duration,
                        category="bursting",
                        track=f"vdc:{request.policy}",
                        args={"phase": job.phase, "policy": request.policy},
                    )
                    obs.counter_add(
                        "repro_burst_jobs_total", 1, {"policy": request.policy}
                    )
                    obs.counter_add(
                        "repro_burst_cloud_seconds_total",
                        duration,
                        {"policy": request.policy},
                    )
                if n_bursted >= max_bursts:
                    break

        cost_usd = self.cloud.cost_usd(cloud_seconds)
        if obs.enabled():
            obs.counter_add(
                "repro_burst_cost_usd_total", cost_usd, {"batch": self.trace.dagman}
            )
            obs.gauge_set(
                "repro_burst_makespan_seconds", now, {"batch": self.trace.dagman}
            )
        return BurstingResult(
            batch=self.trace.dagman,
            runtime_s=now,
            original_runtime_s=self.trace.runtime_s,
            n_jobs=n_jobs,
            n_bursted=n_bursted,
            bursts_by_policy=bursts_by_policy,
            cloud_seconds=cloud_seconds,
            cost_usd=cost_usd,
            throughput_series_jpm=np.asarray(series),
        )
