"""Execution backends behind the portal service: one ``Runner`` protocol.

The refactor that lets a request land on any backend: the service layer
talks to a :class:`Runner` and nothing else, so the same submission can
execute on the simulated OSPool (:class:`PoolRunner`), on a single
machine computing real waveforms (:class:`LocalBackend`), on the
OSG+VDC bursting model (:class:`BurstingRunner`), or against a pure
virtual-cost model for service-layer benchmarks
(:class:`SimulatedRunner`). Every backend returns the same
:class:`RunnerOutcome` shape — simulated wall seconds, completed job
count, a human report — which is all the fair-share dispatcher needs to
run its virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.config import FdwConfig
from repro.core.phases import plan_phases

__all__ = [
    "RunnerOutcome",
    "Runner",
    "PoolRunner",
    "LocalBackend",
    "BurstingRunner",
    "SimulatedRunner",
]


@dataclass(frozen=True)
class RunnerOutcome:
    """What one backend execution produced.

    Attributes
    ----------
    backend:
        Which runner executed (``"pool"``, ``"local"``, ``"burst"``,
        ``"sim"``).
    elapsed_s:
        Simulated wall seconds of the execution — how long the
        submission occupies a service worker on the virtual clock.
    n_jobs:
        Jobs (or chunks) completed.
    report:
        Human monitoring text (what ``Portal.status`` renders).
    details:
        The backend-native result object
        (:class:`~repro.core.submit_osg.FdwBatchResult`,
        :class:`~repro.core.local.LocalRunResult`,
        :class:`~repro.bursting.simulator.BurstingResult`, or ``None``).
    """

    backend: str
    elapsed_s: float
    n_jobs: int
    report: str
    details: object | None = field(default=None, repr=False, compare=False)


@runtime_checkable
class Runner(Protocol):
    """An execution backend the service can place a submission on."""

    #: Stable backend name; part of the coalescing key, so identical
    #: configs submitted to different backends never share an execution.
    name: str

    def execute(self, config: FdwConfig, seed: int) -> RunnerOutcome:
        """Run one configuration to completion (synchronous, simulated)."""
        ...


class PoolRunner:
    """OSPool-backed execution (the portal's classic backend).

    Wraps :func:`~repro.core.submit_osg.run_fdw_batch` with the pool
    model overrides the portal already takes; ``engine`` selects the
    vectorized or reference event loop (bit-identical outputs).
    """

    name = "pool"

    def __init__(
        self,
        pool_config: "object | None" = None,
        capacity: "object | None" = None,
        engine: str = "vector",
    ) -> None:
        self.pool_config = pool_config
        self.capacity = capacity
        self.engine = engine

    def execute(self, config: FdwConfig, seed: int) -> RunnerOutcome:
        from repro.core.monitor import DagmanStats
        from repro.core.submit_osg import run_fdw_batch

        result = run_fdw_batch(
            config,
            pool_config=self.pool_config,  # type: ignore[arg-type]
            capacity=self.capacity,  # type: ignore[arg-type]
            seed=seed,
            engine=self.engine,
        )
        stats = DagmanStats.from_log_text(
            result.user_logs[config.name], source=config.name
        )
        summary = result.metrics.dagmans[config.name]
        return RunnerOutcome(
            backend=self.name,
            elapsed_s=summary.runtime_s,
            n_jobs=summary.n_jobs,
            report=stats.report(config.name),
            details=result,
        )


class LocalBackend:
    """Single-machine execution computing real waveform products.

    Wraps :class:`~repro.core.local.LocalRunner` (with all its caches
    and checkpoint machinery available through the wrapped instance).
    The submission's pool seed is ignored: a local run is fully
    determined by the config, whose own ``seed`` drives every phase.
    """

    name = "local"

    def __init__(self, runner: "object | None" = None) -> None:
        self._runner = runner

    def execute(self, config: FdwConfig, seed: int) -> RunnerOutcome:
        from repro.core.local import LocalRunner

        if self._runner is None:
            self._runner = LocalRunner()
        result = self._runner.run(config)  # type: ignore[attr-defined]
        n_jobs = sum(result.chunks_executed.values()) + sum(
            result.chunks_skipped.values()
        )
        phase_text = ", ".join(
            f"{phase} {seconds:.2f}s"
            for phase, seconds in result.phase_seconds.items()
        )
        return RunnerOutcome(
            backend=self.name,
            elapsed_s=result.total_seconds,
            n_jobs=n_jobs,
            report=(
                f"local run {config.name}: {result.n_waveform_sets} waveform "
                f"sets in {result.total_seconds:.2f}s ({phase_text})"
            ),
            details=result,
        )


class BurstingRunner:
    """OSG-with-VDC-bursting execution (§5.3's hybrid backend).

    Runs the pool simulation, then replays its trace through the
    bursting simulator under Policies 1–3, charging the *bursted*
    makespan — a submission placed here finishes sooner than on the
    plain pool whenever the policies would have bursted to VDC.
    """

    name = "burst"

    def __init__(
        self,
        pool_config: "object | None" = None,
        capacity: "object | None" = None,
        policies: "list | None" = None,
        max_burst_fraction: float | None = None,
    ) -> None:
        self.pool_config = pool_config
        self.capacity = capacity
        self.policies = policies
        self.max_burst_fraction = max_burst_fraction

    def execute(self, config: FdwConfig, seed: int) -> RunnerOutcome:
        from repro.bursting import (
            BurstingSimulator,
            LowThroughputPolicy,
            QueueTimePolicy,
            SubmissionGapPolicy,
            render_report,
        )
        from repro.core.submit_osg import run_fdw_batch
        from repro.wf.replay import metrics_to_batch_trace

        result = run_fdw_batch(
            config,
            pool_config=self.pool_config,  # type: ignore[arg-type]
            capacity=self.capacity,  # type: ignore[arg-type]
            seed=seed,
        )
        trace = metrics_to_batch_trace(result.metrics, config.name)
        policies = (
            self.policies
            if self.policies is not None
            else [LowThroughputPolicy(), QueueTimePolicy(), SubmissionGapPolicy()]
        )
        burst = BurstingSimulator(
            trace,
            policies=policies,
            max_burst_fraction=self.max_burst_fraction,
        ).run()
        return RunnerOutcome(
            backend=self.name,
            elapsed_s=burst.runtime_s,
            n_jobs=burst.n_jobs,
            report=render_report(burst),
            details=burst,
        )


class SimulatedRunner:
    """Virtual-cost backend for service benchmarks and demos.

    Charges a seeded, deterministic simulated makespan scaled to the
    workload size without running a pool simulation, so service-layer
    benchmarks measure the *service* (queueing, coalescing, fair share),
    not the backend. Products still deposit through the portal exactly
    as with the real backends.
    """

    name = "sim"

    def __init__(self, base_s: float = 3600.0, jitter: float = 0.25) -> None:
        from repro.errors import ServiceError

        if base_s <= 0:
            raise ServiceError(f"base_s must be positive, got {base_s}")
        if not (0.0 <= jitter < 1.0):
            raise ServiceError(f"jitter must be in [0, 1), got {jitter}")
        self.base_s = base_s
        self.jitter = jitter

    def execute(self, config: FdwConfig, seed: int) -> RunnerOutcome:
        import numpy as np

        from repro.rng import derive_seed

        n_jobs = plan_phases(config).n_jobs
        rng = np.random.default_rng(
            derive_seed(seed, "service-sim", config.content_digest())
        )
        scale = config.n_waveforms / 1024.0
        elapsed = self.base_s * scale * (
            1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        )
        return RunnerOutcome(
            backend=self.name,
            elapsed_s=elapsed,
            n_jobs=n_jobs,
            report=(
                f"simulated run {config.name}: {n_jobs} jobs in "
                f"{elapsed:.0f}s (virtual)"
            ),
            details=None,
        )
