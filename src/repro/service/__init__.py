"""Multi-tenant portal service: the community gateway over the VDC.

The paper's VDC portal serves one user at a time; this package is the
science-gateway layer (VERCE-style) that serves a community: a
``Runner`` protocol every backend sits behind, an asyncio submission
queue with per-tenant fair share, content-addressed request coalescing,
typed quota/backpressure admission control, and an async results API
over the VDC catalog/storage. See :mod:`repro.service.service` for the
design notes.
"""

from repro.service.clock import Clock, VirtualClock
from repro.service.demo import DemoReport, run_service_demo
from repro.service.runner import (
    BurstingRunner,
    LocalBackend,
    PoolRunner,
    Runner,
    RunnerOutcome,
    SimulatedRunner,
)
from repro.service.service import (
    PortalService,
    ServiceQuota,
    ServiceResult,
    ServiceStats,
    Ticket,
    TraceEvent,
)

__all__ = [
    "Clock",
    "VirtualClock",
    "Runner",
    "RunnerOutcome",
    "PoolRunner",
    "LocalBackend",
    "BurstingRunner",
    "SimulatedRunner",
    "PortalService",
    "ServiceQuota",
    "ServiceResult",
    "ServiceStats",
    "Ticket",
    "TraceEvent",
    "DemoReport",
    "run_service_demo",
]
