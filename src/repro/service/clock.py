"""Service time: a virtual clock the dispatcher advances itself.

Every backend behind the service is a simulator, so the service keeps
its books in *simulation seconds* too: submissions are stamped at the
current virtual time, an execution occupies a worker for the backend's
simulated makespan, and the clock jumps forward only when the dispatcher
completes the earliest running execution. Nothing in the service sleeps
on the wall clock, which is what makes a whole multi-tenant session
deterministic — the same submission trace produces the same timestamps,
the same placement, and the same products on every run (the property the
service test suite pins).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ServiceError

__all__ = ["Clock", "VirtualClock"]


class Clock(Protocol):
    """What the service needs from a clock."""

    def now(self) -> float:
        """Current time in seconds."""
        ...

    def advance_to(self, t: float) -> None:
        """Move time forward to ``t`` (never backward)."""
        ...


class VirtualClock:
    """Monotone simulated clock (the default and the test clock)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Jump forward to ``t``; moving backward is a bookkeeping bug."""
        if t < self._now:
            raise ServiceError(
                f"virtual clock cannot go backward: {t:.3f} < {self._now:.3f}"
            )
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(t={self._now:.1f}s)"
