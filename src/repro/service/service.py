"""The multi-tenant portal service: fair share, coalescing, quotas.

The paper's VDC portal (§6) serves a *community*, not one user. This
module is the gateway layer in front of the portal — the same layering
VERCE's seismology science gateway places between its users and the
shared compute/data substrate: a submission queue with per-tenant fair
share, request coalescing, per-tenant quotas with backpressure, and an
async results API over the VDC catalog/storage.

Design points:

* **Fair share reuses the pool machinery.** Each tenant gets a
  :class:`~repro.osg.schedd.ScheddQueue`; the dispatcher hands free
  workers out with the same :func:`~repro.osg.negotiator.negotiate`
  round-robin the OSPool model uses for concurrent DAGMans (rotated
  across cycles so no tenant is starved) — the Fig 3 interleaving,
  applied to people instead of DAGMans.
* **Coalescing is content-addressed.** A submission is keyed by
  ``(FdwConfig.content_digest(), seed, backend)`` — the same
  content-addressing that keys the GF-bank and K-L caches. Identical
  scenario requests from any number of tenants share one execution and
  every subscriber's ticket resolves to the same run id and product
  set.
* **Deterministic under a seed.** Time is the
  :class:`~repro.service.clock.VirtualClock`: executions occupy workers
  for their backend-reported simulated makespan and the clock advances
  only on completions, so the same submission trace produces the same
  placement, timestamps, and products every run.
* **Quota and backpressure are typed.** A tenant over its pending cap
  gets :class:`~repro.errors.QuotaExceededError` (not retryable — await
  your own tickets); a full shared queue gets
  :class:`~repro.errors.BackpressureError` (retryable — the queue
  drains), both on the :class:`~repro.errors.ReproError` taxonomy so
  :func:`repro.resilience.retry_call` classifies them correctly.
* **Results read verified.** Products deposit through
  :meth:`~repro.vdc.portal.Portal.deposit_products` (all-or-nothing)
  and are retrieved through the VDC catalog/storage; bank-valued
  products come back via :meth:`~repro.vdc.storage.FederatedStorage.fetch_bank`,
  whose disk loads run through the sha256-verified
  :func:`~repro.integrity.read_verified` path.
"""

from __future__ import annotations

import asyncio
import heapq
from dataclasses import dataclass, field

from repro import obs
from repro.condor.jobs import Job, JobSpec, JobState
from repro.core.config import FdwConfig
from repro.errors import BackpressureError, QuotaExceededError, ServiceError
from repro.obs.stats import percentile
from repro.osg.negotiator import NegotiatorConfig, negotiate
from repro.osg.schedd import ScheddQueue
from repro.service.clock import Clock, VirtualClock
from repro.service.runner import PoolRunner, Runner, RunnerOutcome
from repro.vdc.catalog import ProductRecord
from repro.vdc.portal import Portal

__all__ = [
    "ServiceQuota",
    "TraceEvent",
    "ServiceResult",
    "ServiceStats",
    "Ticket",
    "PortalService",
]


@dataclass(frozen=True)
class ServiceQuota:
    """Admission-control knobs.

    Attributes
    ----------
    max_pending_per_tenant:
        Outstanding (unfinished) tickets one tenant may hold; the
        per-tenant quota.
    max_queue_depth:
        Distinct executions that may wait in the shared submission
        queue across all tenants; the backpressure bound. Coalesced
        subscriptions never consume a slot.
    """

    max_pending_per_tenant: int = 8
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.max_pending_per_tenant < 1:
            raise ServiceError(
                f"max_pending_per_tenant must be >= 1, "
                f"got {self.max_pending_per_tenant}"
            )
        if self.max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


@dataclass(frozen=True)
class TraceEvent:
    """One entry of the service's queue trace (the audit log)."""

    seq: int
    time: float
    event: str  # "submit" | "coalesce" | "start" | "finish" | "fail"
    tenant: str
    ticket_id: str
    entry_id: str


@dataclass(frozen=True)
class ServiceResult:
    """What one resolved ticket delivers back to its tenant."""

    ticket_id: str
    tenant: str
    run_id: str
    product_ids: tuple[str, ...]
    backend: str
    coalesced: bool
    report: str
    submitted_at: float
    started_at: float
    finished_at: float

    @property
    def queue_wait_s(self) -> float:
        """Virtual seconds this ticket waited before its execution
        started (0 for a subscriber that joined a running execution)."""
        return max(0.0, self.started_at - self.submitted_at)

    @property
    def turnaround_s(self) -> float:
        """Submit-to-result virtual seconds for this ticket."""
        return self.finished_at - self.submitted_at


@dataclass
class ServiceStats:
    """Aggregate counters and queue-wait distribution of a service."""

    n_submitted: int = 0
    n_coalesced: int = 0
    n_executed: int = 0
    n_failed: int = 0
    n_quota_rejected: int = 0
    n_backpressure_rejected: int = 0
    queue_waits_s: list[float] = field(default_factory=list)

    @property
    def coalescing_hit_rate(self) -> float:
        """Share of accepted tickets served without a new execution."""
        if self.n_submitted == 0:
            return 0.0
        return self.n_coalesced / self.n_submitted

    def wait_percentile(self, p: float) -> float:
        """Nearest-rank percentile of the per-ticket queue waits.

        Validation stays on the service taxonomy (:class:`ServiceError`);
        the math is the shared :func:`repro.obs.stats.percentile`.
        """
        if not (0.0 <= p <= 100.0):
            raise ServiceError(f"percentile must be in [0, 100], got {p}")
        return percentile(self.queue_waits_s, p)


class _Entry:
    """One distinct execution (possibly shared by many tickets)."""

    __slots__ = (
        "entry_id",
        "key",
        "config",
        "seed",
        "tenant",
        "job",
        "future",
        "tickets",
        "outcome",
        "error",
        "run_id",
        "product_ids",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        entry_id: str,
        key: tuple,
        config: FdwConfig,
        seed: int,
        tenant: str,
        job: Job,
        future: asyncio.Future,
    ) -> None:
        self.entry_id = entry_id
        self.key = key
        self.config = config
        self.seed = seed
        self.tenant = tenant
        self.job = job
        self.future = future
        self.tickets: list[Ticket] = []
        self.outcome: RunnerOutcome | None = None
        self.error: BaseException | None = None
        self.run_id = ""
        self.product_ids: tuple[str, ...] = ()
        self.started_at = float("nan")
        self.finished_at = float("nan")


class Ticket:
    """A tenant's handle on one submission; ``await`` it for the result.

    Coalesced tickets share their entry's execution: awaiting any of
    them yields the same run id and product ids.
    """

    def __init__(
        self,
        ticket_id: str,
        tenant: str,
        entry: _Entry,
        submitted_at: float,
        coalesced: bool,
    ) -> None:
        self.ticket_id = ticket_id
        self.tenant = tenant
        self.submitted_at = submitted_at
        self.coalesced = coalesced
        self._entry = entry

    @property
    def done(self) -> bool:
        """Whether the underlying execution has finished (or failed)."""
        return self._entry.future.done()

    async def result(self) -> ServiceResult:
        """Wait for the execution and build this ticket's result.

        The shared future is shielded so one subscriber cancelling its
        wait cannot cancel the execution out from under the others.
        """
        entry = await asyncio.shield(self._entry.future)
        outcome = entry.outcome
        assert outcome is not None  # future only resolves after success
        return ServiceResult(
            ticket_id=self.ticket_id,
            tenant=self.tenant,
            run_id=entry.run_id,
            product_ids=entry.product_ids,
            backend=outcome.backend,
            coalesced=self.coalesced,
            report=outcome.report,
            submitted_at=self.submitted_at,
            started_at=entry.started_at,
            finished_at=entry.finished_at,
        )

    def __await__(self):
        return self.result().__await__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Ticket({self.ticket_id}, tenant={self.tenant!r}, "
            f"coalesced={self.coalesced}, done={self.done})"
        )


class PortalService:
    """Asyncio facade multiplexing many tenants onto one portal.

    Parameters
    ----------
    portal:
        The VDC portal whose catalog/storage receive the products;
        defaults to a fresh :class:`~repro.vdc.portal.Portal`.
    runner:
        Execution backend; defaults to a
        :class:`~repro.service.runner.PoolRunner` sharing the portal's
        pool model overrides.
    n_workers:
        Executions that may run concurrently in virtual time.
    quota:
        Admission control (:class:`ServiceQuota`).
    negotiator:
        Fair-share knobs forwarded to
        :func:`~repro.osg.negotiator.negotiate`.
    clock:
        Service clock; defaults to a fresh
        :class:`~repro.service.clock.VirtualClock`.
    deposit_site:
        Storage site receiving each run's primary replicas (default:
        the portal storage's first site).

    Use as an async context manager::

        async with PortalService(portal) as service:
            ticket = await service.submit("alice", config)
            result = await ticket
    """

    def __init__(
        self,
        portal: Portal | None = None,
        runner: Runner | None = None,
        *,
        n_workers: int = 2,
        quota: ServiceQuota | None = None,
        negotiator: NegotiatorConfig | None = None,
        clock: Clock | None = None,
        deposit_site: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
        self.portal = portal or Portal()
        self.runner = runner or PoolRunner(
            pool_config=self.portal.pool_config, capacity=self.portal.capacity
        )
        self.quota = quota or ServiceQuota()
        self.negotiator = negotiator or NegotiatorConfig()
        self.clock: Clock = clock or VirtualClock()
        self.n_workers = n_workers
        if deposit_site is not None:
            self.portal.storage.site(deposit_site)  # validate early
        self._deposit_site = deposit_site or next(iter(self.portal.storage.sites))
        self.stats = ServiceStats()

        self._queues: dict[str, ScheddQueue] = {}
        self._tenant_order: list[str] = []
        self._rr_offset = 0
        self._entries: dict[str, _Entry] = {}
        self._by_key: dict[tuple, _Entry] = {}
        self._pending: dict[str, int] = {}
        self._running: list[tuple[float, int, _Entry]] = []
        self._free_workers = n_workers
        self._n_queued = 0
        self._seq = 0
        self._trace: list[TraceEvent] = []
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._dispatcher: asyncio.Task | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher task (idempotent; needs a running loop)."""
        if self._closed:
            raise ServiceError("service is closed")
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._run_dispatcher(), name="portal-service-dispatcher"
            )

    async def aclose(self) -> None:
        """Stop the dispatcher; unfinished tickets fail with ServiceError."""
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for entry in self._entries.values():
            if not entry.future.done():
                entry.future.set_exception(
                    ServiceError(
                        f"service closed before {entry.entry_id} finished"
                    )
                )
        # Nothing can run anymore: a closed service is trivially idle,
        # so a later drain() (e.g. from __aexit__) returns immediately.
        self._idle.set()

    async def __aenter__(self) -> "PortalService":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            await self.drain()
        await self.aclose()

    async def drain(self) -> None:
        """Wait until every accepted submission has finished (or, after
        :meth:`aclose`, failed)."""
        if not self._closed:
            self.start()
            self._wake.set()
        await self._idle.wait()

    # -- submission ----------------------------------------------------------

    async def submit(
        self, tenant: str, config: FdwConfig, seed: int = 0
    ) -> Ticket:
        """Queue one scenario submission for a tenant.

        Identical submissions (same config content digest, seed, and
        backend) coalesce onto one execution while it is queued or
        running. Raises :class:`~repro.errors.QuotaExceededError` when
        the tenant is at its pending cap and
        :class:`~repro.errors.BackpressureError` when the shared queue
        is full.
        """
        if self._closed:
            raise ServiceError("service is closed")
        if not tenant or not isinstance(tenant, str):
            raise ServiceError(f"tenant must be a non-empty string, got {tenant!r}")
        self.start()
        now = self.clock.now()
        if self._pending.get(tenant, 0) >= self.quota.max_pending_per_tenant:
            self.stats.n_quota_rejected += 1
            obs.counter_add(
                "repro_service_admissions_total", 1,
                {"tenant": tenant, "outcome": "quota_rejected"},
            )
            raise QuotaExceededError(
                f"tenant {tenant!r} has {self._pending[tenant]} pending "
                f"submission(s), the per-tenant quota "
                f"({self.quota.max_pending_per_tenant}); await an "
                f"outstanding ticket before submitting more"
            )
        key = (config.content_digest(), int(seed), self.runner.name)
        entry = self._by_key.get(key)
        if entry is not None and not entry.future.done():
            ticket = self._make_ticket(tenant, entry, now, coalesced=True)
            self.stats.n_coalesced += 1
            obs.counter_add(
                "repro_service_admissions_total", 1,
                {"tenant": tenant, "outcome": "coalesced"},
            )
            self._record(now, "coalesce", tenant, ticket.ticket_id, entry.entry_id)
            return ticket
        if self._n_queued >= self.quota.max_queue_depth:
            self.stats.n_backpressure_rejected += 1
            obs.counter_add(
                "repro_service_admissions_total", 1,
                {"tenant": tenant, "outcome": "backpressure_rejected"},
            )
            raise BackpressureError(
                f"submission queue is full ({self._n_queued} waiting, "
                f"cap {self.quota.max_queue_depth}); back off and retry"
            )
        entry_id = f"svc-{len(self._entries):05d}"
        job = Job(spec=JobSpec(name=entry_id), owner=tenant)
        job.transition(JobState.IDLE, now)
        entry = _Entry(
            entry_id=entry_id,
            key=key,
            config=config,
            seed=int(seed),
            tenant=tenant,
            job=job,
            future=asyncio.get_running_loop().create_future(),
        )
        self._entries[entry_id] = entry
        self._by_key[key] = entry
        queue = self._queues.get(tenant)
        if queue is None:
            queue = ScheddQueue(tenant)
            self._queues[tenant] = queue
            self._tenant_order.append(tenant)
        queue.enqueue(entry_id, job)
        self._n_queued += 1
        self._idle.clear()
        ticket = self._make_ticket(tenant, entry, now, coalesced=False)
        obs.counter_add(
            "repro_service_admissions_total", 1,
            {"tenant": tenant, "outcome": "accepted"},
        )
        self._record(now, "submit", tenant, ticket.ticket_id, entry_id)
        self._wake.set()
        return ticket

    def _make_ticket(
        self, tenant: str, entry: _Entry, now: float, coalesced: bool
    ) -> Ticket:
        ticket = Ticket(
            ticket_id=f"tkt-{self.stats.n_submitted:05d}",
            tenant=tenant,
            entry=entry,
            submitted_at=now,
            coalesced=coalesced,
        )
        entry.tickets.append(ticket)
        self._pending[tenant] = self._pending.get(tenant, 0) + 1
        self.stats.n_submitted += 1
        return ticket

    # -- results API ---------------------------------------------------------

    async def discover(
        self, home_site: str | None = None, **query: object
    ) -> list[ProductRecord]:
        """Async catalog discovery (feeds the prefetch trace, ranges
        included, when ``home_site`` is given)."""
        return self.portal.discover(home_site=home_site, **query)

    async def retrieve(self, product_id: str, home_site: str) -> float:
        """Deliver a product to a tenant's home site; returns seconds."""
        return self.portal.retrieve(product_id, home_site)

    async def fetch_bank(
        self,
        product_id: str,
        home_site: str,
        rebuild: "object | None" = None,
    ) -> tuple:
        """Fetch a bank-valued product's real bytes, integrity-verified.

        Thin async facade over
        :meth:`~repro.vdc.storage.FederatedStorage.fetch_bank`: disk
        loads go through the sha256-verified read path, corrupt entries
        quarantine and (with ``rebuild``) recompute from source.
        """
        return self.portal.storage.fetch_bank(
            product_id, home_site, rebuild=rebuild  # type: ignore[arg-type]
        )

    def queue_trace(self) -> tuple[TraceEvent, ...]:
        """The full audit trace, oldest first."""
        return tuple(self._trace)

    def runs(self) -> list[str]:
        """Run ids deposited by this service, oldest first."""
        return [
            e.run_id
            for e in self._entries.values()
            if e.run_id and e.error is None
        ]

    # -- dispatcher ----------------------------------------------------------

    async def _run_dispatcher(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while True:
                self._start_ready()
                if not self._running:
                    break
                # Yield once so submissions already scheduled on the
                # loop can land (and coalesce) before virtual time
                # jumps to the next completion.
                await asyncio.sleep(0)
                if self._wake.is_set():
                    self._wake.clear()
                    continue
                self._complete_next()
            if self._n_queued == 0 and not self._running:
                self._idle.set()

    def _rotated_queues(self) -> list[ScheddQueue]:
        order = self._tenant_order
        if not order:
            return []
        k = self._rr_offset % len(order)
        return [self._queues[t] for t in order[k:] + order[:k]]

    def _start_ready(self) -> None:
        while self._free_workers > 0 and self._n_queued > 0:
            matches = negotiate(
                self._rotated_queues(), self._free_workers, self.negotiator
            )
            if not matches:
                break
            for queue, entry_id, job in matches:
                self._start_entry(entry_id, job)
            last_tenant = matches[-1][0].name
            self._rr_offset = (
                self._tenant_order.index(last_tenant) + 1
            ) % len(self._tenant_order)

    def _start_entry(self, entry_id: str, job: Job) -> None:
        entry = self._entries[entry_id]
        now = self.clock.now()
        job.transition(JobState.RUNNING, now)
        entry.started_at = now
        self._free_workers -= 1
        self._n_queued -= 1
        self._record(now, "start", entry.tenant, "", entry_id)
        try:
            entry.outcome = self.runner.execute(entry.config, entry.seed)
            finish = now + max(0.0, entry.outcome.elapsed_s)
        except Exception as exc:  # noqa: BLE001 - resolved via the future
            entry.error = exc
            finish = now
        self._seq += 1
        heapq.heappush(self._running, (finish, self._seq, entry))

    def _complete_next(self) -> None:
        finish, _, entry = heapq.heappop(self._running)
        self.clock.advance_to(finish)
        self._free_workers += 1
        entry.finished_at = finish
        if entry.error is None:
            try:
                run_id = self.portal.allocate_run_id(entry.config)
                entry.product_ids = tuple(
                    self.portal.deposit_products(
                        run_id,
                        entry.config,
                        site=self._deposit_site,
                        user=entry.tenant,
                    )
                )
                entry.run_id = run_id
            except Exception as exc:  # noqa: BLE001 - resolved via the future
                entry.error = exc
        if self._by_key.get(entry.key) is entry:
            del self._by_key[entry.key]
        for ticket in entry.tickets:
            self._pending[ticket.tenant] -= 1
        if entry.error is None:
            entry.job.transition(JobState.COMPLETED, finish)
            self.stats.n_executed += 1
            for ticket in entry.tickets:
                wait = max(0.0, entry.started_at - ticket.submitted_at)
                self.stats.queue_waits_s.append(wait)
                obs.histogram_observe(
                    "repro_service_queue_wait_seconds", wait,
                    {"tenant": ticket.tenant},
                )
            if obs.enabled() and entry.outcome is not None:
                obs.counter_add(
                    "repro_service_runs_total", 1,
                    {"backend": entry.outcome.backend, "outcome": "success"},
                )
            self._record(finish, "finish", entry.tenant, "", entry.entry_id)
            entry.future.set_result(entry)
        else:
            entry.job.transition(JobState.FAILED, finish)
            self.stats.n_failed += 1
            obs.counter_add(
                "repro_service_runs_total", 1,
                {"backend": self.runner.name, "outcome": "failed"},
            )
            self._record(finish, "fail", entry.tenant, "", entry.entry_id)
            entry.future.set_exception(entry.error)

    def _record(
        self, time: float, event: str, tenant: str, ticket_id: str, entry_id: str
    ) -> None:
        self._trace.append(
            TraceEvent(
                seq=len(self._trace),
                time=time,
                event=event,
                tenant=tenant,
                ticket_id=ticket_id,
                entry_id=entry_id,
            )
        )
