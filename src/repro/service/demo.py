"""Seeded multi-tenant demo driver: the ``repro serve`` workload.

Generates a reproducible community workload — N tenants with a skewed
(zipf-like) submission mix drawn from a small pool of distinct
scenarios, so identical requests genuinely recur — drives it through a
:class:`~repro.service.service.PortalService`, and reports the numbers
the service layer exists to improve: coalescing hit rate, per-tenant
fair-share placement, and the p50/p99 queue waits. The same driver
backs the ``portal-service`` benchmark group, and because the service
clock is virtual, two runs with the same seed produce byte-identical
reports.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FdwConfig
from repro.errors import BackpressureError, QuotaExceededError, ServiceError
from repro.rng import derive_seed
from repro.service.runner import Runner, SimulatedRunner
from repro.service.service import (
    PortalService,
    ServiceQuota,
    ServiceResult,
    ServiceStats,
    TraceEvent,
)
from repro.vdc.portal import Portal

__all__ = ["DemoReport", "run_service_demo"]


@dataclass(frozen=True)
class DemoReport:
    """Outcome of one seeded service demo."""

    seed: int
    n_tenants: int
    n_submissions: int
    n_distinct_scenarios: int
    n_workers: int
    backend: str
    stats: ServiceStats
    results: list[ServiceResult] = field(repr=False)
    trace: tuple[TraceEvent, ...] = field(repr=False)
    n_retried_rejections: int = 0

    def starts_by_tenant(self) -> dict[str, int]:
        """Executions started per owning tenant (fair-share view)."""
        counts: dict[str, int] = {}
        for event in self.trace:
            if event.event == "start":
                counts[event.tenant] = counts.get(event.tenant, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> str:
        """Human report (what ``repro serve`` prints)."""
        stats = self.stats
        lines = [
            f"portal service demo (seed {self.seed}, backend {self.backend!r})",
            f"  tenants: {self.n_tenants}, submissions: {self.n_submissions} "
            f"drawn from {self.n_distinct_scenarios} distinct scenario(s), "
            f"workers: {self.n_workers}",
            f"  executions: {stats.n_executed} "
            f"(coalescing hit rate {100.0 * stats.coalescing_hit_rate:.1f}%: "
            f"{stats.n_coalesced} of {stats.n_submitted} tickets shared a run)",
            f"  queue wait p50 {stats.wait_percentile(50):.0f}s, "
            f"p99 {stats.wait_percentile(99):.0f}s (virtual)",
            f"  rejections: {stats.n_quota_rejected} quota, "
            f"{stats.n_backpressure_rejected} backpressure "
            f"({self.n_retried_rejections} retried after drain)",
            "  executions started per tenant:",
        ]
        for tenant, count in self.starts_by_tenant().items():
            lines.append(f"    {tenant}: {count}")
        return "\n".join(lines)


def _demo_configs(n_distinct: int, n_waveforms: int, seed: int) -> list[FdwConfig]:
    return [
        FdwConfig(
            n_waveforms=n_waveforms,
            n_stations=4,
            mesh=(8, 5),
            name=f"scenario-{i:02d}",
            seed=derive_seed(seed, "demo-config", i) % (2**31),
        )
        for i in range(n_distinct)
    ]


async def _drive(
    service: PortalService,
    configs: list[FdwConfig],
    n_tenants: int,
    n_submissions: int,
    seed: int,
) -> tuple[list[ServiceResult], int]:
    rng = np.random.default_rng(derive_seed(seed, "service-demo"))
    # Zipf-ish tenant mix: tenant k submits with weight 1/(k+1), so the
    # fair-share machinery has real skew to push back against.
    weights = 1.0 / (1.0 + np.arange(n_tenants))
    weights /= weights.sum()
    tickets = []
    retried = 0
    for _ in range(n_submissions):
        tenant = f"tenant-{int(rng.choice(n_tenants, p=weights)):02d}"
        config = configs[int(rng.integers(len(configs)))]
        try:
            tickets.append(await service.submit(tenant, config))
        except (QuotaExceededError, BackpressureError):
            # The demo client's backoff: let the queue drain, try once
            # more (both rejections stay visible in the stats).
            retried += 1
            await service.drain()
            tickets.append(await service.submit(tenant, config))
        # Pace the arrivals: each yield lets the dispatcher place work
        # (and the virtual clock jump over completions) before the next
        # submission lands, so queue waits and coalescing windows look
        # like a live community, not one atomic batch. Determinism is
        # unaffected — the single-threaded loop interleaves the two
        # tasks identically for identical seeds.
        for _ in range(int(rng.integers(0, 3))):
            await asyncio.sleep(0)
    return [await t for t in tickets], retried


def run_service_demo(
    n_tenants: int = 8,
    n_submissions: int = 64,
    n_distinct: int = 6,
    seed: int = 0,
    n_workers: int = 4,
    n_waveforms: int = 16,
    runner: Runner | None = None,
    quota: ServiceQuota | None = None,
) -> DemoReport:
    """Run one seeded multi-tenant session and return its report."""
    if n_tenants < 1 or n_submissions < 1 or n_distinct < 1:
        raise ServiceError(
            "n_tenants, n_submissions, and n_distinct must all be >= 1"
        )
    configs = _demo_configs(n_distinct, n_waveforms, seed)
    backend = runner or SimulatedRunner()
    quota = quota or ServiceQuota(
        max_pending_per_tenant=max(8, n_submissions),
        max_queue_depth=max(16, n_submissions),
    )

    async def session() -> tuple[PortalService, list[ServiceResult], int]:
        service = PortalService(
            Portal(), backend, n_workers=n_workers, quota=quota
        )
        async with service:
            results, retried = await _drive(
                service, configs, n_tenants, n_submissions, seed
            )
        return service, results, retried

    service, results, retried = asyncio.run(session())
    return DemoReport(
        seed=seed,
        n_tenants=n_tenants,
        n_submissions=n_submissions,
        n_distinct_scenarios=n_distinct,
        n_workers=n_workers,
        backend=backend.name,
        stats=service.stats,
        results=results,
        trace=service.queue_trace(),
        n_retried_rejections=retried,
    )
