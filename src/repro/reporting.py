"""Text rendering for experiment output: tables and sparklines.

Every experiment in this repository reports through the terminal (the
paper's figures become printed series). This module centralizes the
rendering so examples, benchmarks and the CLI produce consistent output:

* :func:`sparkline` — a fixed-width unicode intensity strip of a series,
* :func:`render_table` — aligned columns with numeric formatting,
* :func:`series_summary_row` — one-line mean/sd/min/max rendering.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ReproError

__all__ = ["sparkline", "render_table", "series_summary_row"]

_BLOCKS = " .:-=+*#%@"


def sparkline(series: Sequence[float] | np.ndarray, width: int = 48) -> str:
    """Render a series as a fixed-width intensity strip.

    The series is split into ``width`` bins; each bin's mean maps to a
    character from light to dark. An empty series renders as an empty
    string; a constant-zero series as all-blank; a constant non-zero
    series as a flat ``-`` line. Series containing negative values are
    scaled by their full range (so indexes never wrap negative into the
    palette — the old top-scaling rendered ``[-1, 1]`` with artifact
    characters).
    """
    if width < 1:
        raise ReproError(f"width must be >= 1, got {width}")
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        return ""
    if not np.all(np.isfinite(arr)):
        arr = np.nan_to_num(arr, nan=0.0, posinf=0.0, neginf=0.0)
    bins = np.array_split(arr, min(width, arr.size))
    means = np.array([b.mean() for b in bins])
    lo = means.min()
    top = means.max()
    if lo >= 0.0:
        if top <= 0.0:
            return " " * len(means)
        scaled = means / top
    else:
        span = top - lo
        if span <= 0.0:
            # constant negative series: flat line, not blank (blank
            # would be indistinguishable from "no signal")
            return "-" * len(means)
        scaled = (means - lo) / span
    idx = np.clip((scaled * (len(_BLOCKS) - 1)).astype(int), 0,
                  len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in idx)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
) -> str:
    """Render aligned columns.

    Floats are fixed to ``precision`` decimals; everything else via
    ``str``. Column widths fit the widest cell. Raises on ragged rows.
    """
    if precision < 0:
        raise ReproError(f"precision must be >= 0, got {precision}")

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    rendered = [[fmt(v) for v in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ReproError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[c])), *(len(r[c]) for r in rendered)) if rendered
        else len(str(headers[c]))
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def series_summary_row(label: str, series: Sequence[float] | np.ndarray) -> str:
    """One-line summary: ``label  mean=... sd=... min=... max=...``.

    An empty series renders as an explicit ``n=0`` row rather than
    raising or emitting NaN-mean warnings — summary rows appear in
    reports for runs that may legitimately have produced no samples
    (e.g. a tenant that never queued).
    """
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        return f"{label}: (no samples, n=0)"
    return (
        f"{label}: mean={np.mean(arr):.2f} sd={np.std(arr):.2f} "
        f"min={np.min(arr):.2f} max={np.max(arr):.2f} (n={arr.size})"
    )
