"""repro: a full reproduction of the FakeQuakes DAGMan Workflow (FDW).

Reproduces "Accelerating Data-Intensive Seismic Research Through
Parallel Workflow Optimization and Federated Cyberinfrastructure"
(Adair, Rodero, Parashar, Melgar -- SC-W 2023) as an installable Python
library:

* :mod:`repro.seismo` -- a MudPy/FakeQuakes-equivalent earthquake and
  GNSS waveform simulator,
* :mod:`repro.condor` -- an HTCondor/DAGMan substrate,
* :mod:`repro.osg` -- a discrete-event Open Science Pool simulator,
* :mod:`repro.core` -- the FDW itself: configuration, phase planning,
  DAG construction, local and OSG execution, partitioning, monitoring,
  traces, and the paper's statistics,
* :mod:`repro.bursting` -- the VDC bursting simulator and its three
  policies,
* :mod:`repro.vdc` -- the Virtual Data Collaboratory catalog/portal.

Quickstart::

    from repro.core import FdwConfig, run_fdw_batch

    config = FdwConfig(n_waveforms=1024, n_stations=121, name="demo")
    result = run_fdw_batch(config, seed=7)
    summary = result.metrics.dagmans["demo"]
    print(summary.runtime_s / 3600, "hours,", summary.throughput_jpm, "jobs/min")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
