"""Seeded chaos campaigns: prove the resilience layer end to end.

A chaos campaign runs the *same* workload twice — once fault-free, once
under a seeded storm of injected failures — and asserts the strongest
property the stack claims: **the final product archive is bit-identical
either way**. Corruption degrades to quarantine-and-recompute, flaky
chunks are retried on deterministic backoff, transfer glitches are
absorbed by the Stash retry path, and a site outage is ridden out by
circuit breakers failing retrievals over to healthy replicas (or a
recompute when none survive). Because every fault draw, retry delay,
and breaker transition is seed-derived, a campaign is exactly
replayable — chaos you can bisect.

Three stages, mirroring the three layers the faults target:

1. **Local runner** — a checkpointed run is crashed mid-phase, its
   GF-bank / K-L cache entries and one checkpoint chunk are corrupted
   on disk, chunk flakes are injected, and the run is resumed. The
   resumed archive must match the fault-free baseline byte for byte
   (quarantine directories excluded — they hold the damaged evidence).
2. **OSPool / Stash** — the same DAGMan batch is simulated with and
   without :class:`~repro.faults.TransferFaults`; both must complete
   every job (no rescue files), the faulted one just pays retries,
   backoff, and the occasional degraded origin pull.
3. **VDC federation** — a bank-valued product is retrieved across a
   :class:`~repro.faults.SiteOutage` window under per-site circuit
   breakers: failover to the surviving replica, fail-fast while the
   breaker is open, half-open recovery after the outage, and a
   quarantine-triggered rebuild when the cached bytes are corrupted.

Run it from the CLI: ``repro chaos --seed 7``.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import FdwConfig
from repro.core.gfcache import GFCache
from repro.core.local import LocalRunner
from repro.core.workflow import build_fdw_dag
from repro.condor.dagman import DagmanOptions
from repro.osg.pool import OSPoolSimulator
from repro.faults import (
    ChunkCrash,
    ChunkFlake,
    FaultInjected,
    FaultPlan,
    SiteOutage,
    StorageFault,
    TransferFaults,
)
from repro.resilience import BreakerPolicy
from repro.rng import RngFactory
from repro.seismo.fakequakes import FakeQuakes, FakeQuakesParameters
from repro.seismo.klcache import KLCache
from repro.vdc.storage import FederatedStorage, StorageSite

__all__ = ["ChaosConfig", "ChaosReport", "archive_bytes", "run_chaos_campaign"]


def archive_bytes(root: str | Path) -> dict[str, bytes]:
    """Every product file under an archive tree, keyed by relative path.

    Underscore-prefixed directories (``_quarantine``, ``_checkpoint``)
    are excluded: they hold operational state and damaged-artifact
    evidence, not products, so bit-identity is asserted over exactly
    what a consumer of the archive sees.
    """
    root = Path(root)
    out: dict[str, bytes] = {}
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(root)
        if any(part.startswith("_") for part in rel.parts):
            continue
        out[str(rel)] = path.read_bytes()
    return out


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of one campaign (all fault schedules derive from ``seed``)."""

    seed: int = 0
    transfer_failure_prob: float = 0.15
    transfer_slow_prob: float = 0.10
    outage_window: tuple[float, float] = (100.0, 400.0)
    breaker: BreakerPolicy = BreakerPolicy(
        failure_threshold=2, cooldown_s=120.0, probe_cost_s=5.0
    )


@dataclass
class ChaosReport:
    """Everything a campaign observed, plus the verdict."""

    seed: int
    bit_identical: bool
    n_products: int
    quarantined: list[str] = field(default_factory=list)
    chunk_retries: dict[str, int] = field(default_factory=dict)
    retry_backoff_s: float = 0.0
    pool_makespan_s: float = 0.0
    pool_makespan_faulted_s: float = 0.0
    n_transfer_faults: int = 0
    n_transfer_retries: int = 0
    n_degraded_transfers: int = 0
    transfer_backoff_s: float = 0.0
    n_failovers: int = 0
    n_rebuilds: int = 0
    breaker_events: list[str] = field(default_factory=list)
    breaker_snapshots: list[dict] = field(default_factory=list)

    def summary(self) -> str:
        """Human-readable campaign report (what the CLI prints)."""
        verdict = "BIT-IDENTICAL" if self.bit_identical else "DIVERGED"
        lines = [
            f"chaos campaign (seed {self.seed}): archive {verdict} "
            f"({self.n_products} product files)",
            f"  local: {sum(self.chunk_retries.values())} chunk retries "
            f"{dict(self.chunk_retries)}, "
            f"{self.retry_backoff_s:.2f}s backoff accounted",
            f"  quarantined artifacts ({len(self.quarantined)}):",
        ]
        lines += [f"    {name}" for name in self.quarantined]
        lines += [
            f"  stash: {self.n_transfer_faults} transfer faults, "
            f"{self.n_transfer_retries} retries "
            f"({self.transfer_backoff_s:.1f}s backoff), "
            f"{self.n_degraded_transfers} degraded to origin",
            f"  pool makespan: {self.pool_makespan_s:.0f}s fault-free "
            f"-> {self.pool_makespan_faulted_s:.0f}s under faults",
            f"  vdc: {self.n_failovers} failovers, {self.n_rebuilds} "
            f"rebuild(s) from source",
        ]
        for event in self.breaker_events:
            lines.append(f"    {event}")
        for snap in self.breaker_snapshots:
            lines.append(
                f"  breaker {snap['name']}: {snap['state']} "
                f"(opened {snap['n_opens']}x, rejected {snap['n_rejected']})"
            )
        return "\n".join(lines)


def _small_config(seed: int) -> FdwConfig:
    return FdwConfig(
        n_waveforms=6,
        n_stations=3,
        mesh=(8, 5),
        chunk_a=2,
        chunk_c=2,
        seed=seed,
        name="chaos",
    )


def _quarantine_names(workdir: Path) -> list[str]:
    return sorted(
        str(p.relative_to(workdir))
        for p in workdir.rglob("*")
        if p.is_file()
        and not p.name.endswith(".reason")
        and not p.name.endswith(".sha256")
        and any(part in ("quarantine", "_quarantine") for part in p.parts)
    )


def _local_stage(
    config: FdwConfig, chaos: ChaosConfig, workdir: Path, report: ChaosReport
) -> None:
    """Crash + corrupt + flake a checkpointed run; must match baseline."""
    base_dir = workdir / "baseline"
    chaos_dir = workdir / "chaos"
    with LocalRunner(
        gf_cache=GFCache(cache_dir=workdir / "base_gf"),
        kl_cache=KLCache(cache_dir=workdir / "base_kl"),
    ) as runner:
        runner.run(config, archive_dir=base_dir)

    rng = RngFactory(chaos.seed).generator("chaos", "local")
    gf_dir = workdir / "chaos_gf"
    kl_dir = workdir / "chaos_kl"
    # Leg 1: flaked early, crashed mid-Phase-C (after its chunks
    # checkpointed) — the deterministic stand-in for a process death.
    plan = FaultPlan(
        crashes=(ChunkCrash("C", 1),),
        flakes=(ChunkFlake("A", int(rng.integers(3)), times=1),),
    )
    with LocalRunner(
        gf_cache=GFCache(cache_dir=gf_dir), kl_cache=KLCache(cache_dir=kl_dir)
    ) as runner:
        try:
            runner.run(config, archive_dir=chaos_dir, checkpoint=True, faults=plan)
        except FaultInjected:
            pass
        else:  # pragma: no cover - the crash must fire
            raise AssertionError("injected ChunkCrash did not fire")

    # Storm between the legs: bit-flip the cached GF bank, truncate a
    # K-L basis and one checkpointed chunk. All three must be caught by
    # their digest checks, quarantined, and recomputed on resume.
    for pattern, kind, where in (
        ("gf_*.npz", "bitflip", gf_dir),
        ("kl_*.npz", "truncate", kl_dir),
        ("A_*.pkl", "truncate", chaos_dir / "_checkpoint"),
    ):
        victims = sorted(where.glob(pattern))
        if victims:
            StorageFault(kind, seed=chaos.seed).apply(victims[0])

    # Leg 2: resume through fresh caches (cold memory, corrupted disk),
    # with one more flake on the final C chunk's first attempt.
    resume_plan = FaultPlan(flakes=(ChunkFlake("C", 2, times=1),))
    with LocalRunner(
        gf_cache=GFCache(cache_dir=gf_dir), kl_cache=KLCache(cache_dir=kl_dir)
    ) as runner:
        result = runner.run(
            config, archive_dir=chaos_dir, resume=True, faults=resume_plan
        )

    report.chunk_retries = dict(result.chunk_retries)
    report.retry_backoff_s = result.retry_backoff_s
    baseline = archive_bytes(base_dir)
    chaotic = archive_bytes(chaos_dir)
    report.n_products = len(baseline)
    report.bit_identical = baseline == chaotic
    report.quarantined = _quarantine_names(workdir)


def _run_pool(
    config: FdwConfig, seed: int, transfer_faults: TransferFaults | None
) -> OSPoolSimulator:
    pool = OSPoolSimulator(seed=seed, transfer_faults=transfer_faults)
    pool.submit_dagman(
        build_fdw_dag(config),
        options=DagmanOptions(max_idle=config.max_idle),
        name=config.name,
    )
    pool.run()
    return pool


def _pool_stage(config: FdwConfig, chaos: ChaosConfig, report: ChaosReport) -> None:
    """Same DAGMan batch with and without transfer faults: both finish."""
    clean = _run_pool(config, chaos.seed, None)
    faults = TransferFaults(
        failure_prob=chaos.transfer_failure_prob,
        slow_prob=chaos.transfer_slow_prob,
        seed=chaos.seed,
    )
    faulted = _run_pool(config, chaos.seed, faults)
    for pool in (clean, faulted):
        if any(run.dead for run in pool.dagman_runs.values()):  # pragma: no cover
            raise AssertionError("chaos pool stage left dead DAGMans behind")
    report.pool_makespan_s = clean.sim.now
    report.pool_makespan_faulted_s = faulted.sim.now
    report.n_transfer_faults = faulted.cache.n_transfer_faults
    report.n_transfer_retries = faulted.cache.n_transfer_retries
    report.n_degraded_transfers = faulted.cache.n_degraded_transfers
    report.transfer_backoff_s = faulted.cache.total_backoff_seconds


def _vdc_stage(
    config: FdwConfig, chaos: ChaosConfig, workdir: Path, report: ChaosReport
) -> None:
    """Ride out a site outage on breakers; rebuild corrupted bytes."""
    params = FakeQuakesParameters(
        n_ruptures=config.n_waveforms,
        n_stations=config.n_stations,
        mw_range=config.mw_range,
        mesh=config.mesh,
        gf_dtype=config.gf_dtype,
        seed=config.seed,
    )
    fq = FakeQuakes.from_parameters(params)
    fq.phase_a_distances()
    bank = fq.phase_b_greens_functions()

    cache_dir = workdir / "vdc_cache"
    cache = GFCache(cache_dir=cache_dir)
    start, end = chaos.outage_window
    storage = FederatedStorage(
        [
            # The user's gateway is deliberately tiny: nothing can be
            # cached locally, so every retrieval probes the federation.
            StorageSite("gateway", capacity_mb=1e-6),
            StorageSite("origin", wan_mb_per_s=100.0),
            StorageSite("mirror", wan_mb_per_s=40.0),
        ],
        artifact_cache=cache,
        breaker_policy=chaos.breaker,
        outages=[SiteOutage("origin", start, end)],
    )
    storage.store_bank("gf/chaos", bank, site="origin")
    storage.replicate("gf/chaos", "mirror")

    def fetch(now: float) -> float:
        _, elapsed = storage.fetch_bank(
            "gf/chaos", "gateway", now=now, rebuild=fq.phase_b_greens_functions
        )
        return elapsed

    breaker = storage.breakers["origin"]
    timeline = [
        (0.0, "before the outage: served by origin"),
        (start + 10.0, "origin dark: probe fails, failover to mirror"),
        (start + 20.0, "origin dark again: breaker trips open"),
        (start + 30.0, "breaker open: origin skipped for free"),
        (start + 30.0 + chaos.breaker.cooldown_s, "half-open probe, still dark"),
        (end + chaos.breaker.cooldown_s * 2, "outage over: probe heals the breaker"),
    ]
    for now, label in timeline:
        fetch(now)
        report.breaker_events.append(
            f"t={now:6.0f}s {label} [origin breaker: {breaker.state}]"
        )

    # Corrupt the one physical copy; the next fetch must quarantine it
    # and transparently rebuild from source.
    cache.clear()  # drop the memory level; the disk bytes are the copy
    victims = sorted(cache_dir.glob("gf_*.npz"))
    StorageFault("bitflip", seed=chaos.seed).apply(victims[0])
    fetch(end + chaos.breaker.cooldown_s * 2 + 10.0)

    report.n_failovers = storage.n_failovers
    report.n_rebuilds = storage.n_rebuilds
    report.breaker_snapshots = storage.breaker_snapshots()
    report.quarantined = sorted(
        set(report.quarantined) | set(_quarantine_names(workdir))
    )


def run_chaos_campaign(
    workdir: str | Path,
    chaos: ChaosConfig | None = None,
    config: FdwConfig | None = None,
) -> ChaosReport:
    """Run the full three-stage campaign; see the module docstring.

    ``workdir`` is created (and wiped) for the campaign's archives and
    caches; quarantined artifacts are left in place for inspection.
    """
    chaos = chaos or ChaosConfig()
    config = config or _small_config(chaos.seed)
    workdir = Path(workdir)
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    report = ChaosReport(seed=chaos.seed, bit_identical=False, n_products=0)
    _local_stage(config, chaos, workdir, report)
    _pool_stage(config, chaos, report)
    _vdc_stage(config, chaos, workdir, report)
    return report
