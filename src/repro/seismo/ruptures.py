"""Semistochastic rupture scenario generation (the FakeQuakes core).

A :class:`RuptureGenerator` produces :class:`Rupture` realizations on a
fault mesh following the FakeQuakes recipe:

1. draw a target magnitude (uniform in a configured range, FakeQuakes'
   default behaviour for building training catalogs),
2. draw rupture length/width from the scaling law and select a patch of
   subfaults around a random hypocenter,
3. sample a log-Gaussian correlated slip field on the patch from the
   K-L basis of the von Kármán correlation (correlation lengths scale
   with the rupture dimensions),
4. rescale slip so the realized moment matches the target magnitude,
5. assign kinematics (rise times, onset times).

Step 3 reuses the recyclable :class:`~repro.seismo.distance.DistanceMatrices`;
constructing the generator with precomputed matrices skips the expensive
O(n^2) geometry work — exactly the recycling the FDW Phase A exploits.

.. note::
   Patch selection clips the scaling-law dimensions to the mesh, so on a
   *small* mesh a large-magnitude rupture gets less area than the
   scaling law wants and moment closure compensates with higher slip
   (peak slips can exceed observed values). Use the full 30x15 default
   mesh (or larger) when realistic slip amplitudes matter; tiny meshes
   are for fast tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RuptureError
from repro.seismo.distance import DistanceMatrices
from repro.seismo.geometry import FaultGeometry
from repro.seismo.kinematics import onset_times, rise_times
from repro.seismo.klcache import KLCache
from repro.seismo.scaling import (
    SUBDUCTION_INTERFACE,
    ScalingLaw,
    magnitude_from_moment,
    moment_from_magnitude,
)
from repro.seismo.spectra import KarhunenLoeveBasis, von_karman_correlation

__all__ = ["Rupture", "RuptureGenerator"]


@dataclass(frozen=True)
class Rupture:
    """One rupture scenario.

    Attributes
    ----------
    rupture_id:
        Catalog identifier, e.g. ``"chile.000042"``.
    target_mw / actual_mw:
        Requested and realized moment magnitude. They match to float
        precision because slip is rescaled to close the moment.
    subfault_indices:
        Flattened indices into the fault mesh for the rupture patch.
    slip_m:
        Slip (m) per patch subfault, non-negative.
    rise_time_s / onset_time_s:
        Kinematic parameters per patch subfault.
    hypocenter_index:
        Index *within the patch arrays* of the hypocenter subfault.
    """

    rupture_id: str
    target_mw: float
    actual_mw: float
    subfault_indices: np.ndarray
    slip_m: np.ndarray
    rise_time_s: np.ndarray
    onset_time_s: np.ndarray
    hypocenter_index: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.subfault_indices.shape[0]
        for name in ("slip_m", "rise_time_s", "onset_time_s"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise RuptureError(f"{name} shape {arr.shape} != patch size ({n},)")
        if n == 0:
            raise RuptureError("rupture patch is empty")
        if np.any(self.slip_m < 0):
            raise RuptureError("slip must be non-negative")
        if not (0 <= self.hypocenter_index < n):
            raise RuptureError("hypocenter index outside patch")

    @property
    def n_subfaults(self) -> int:
        """Number of subfaults in the rupture patch."""
        return self.subfault_indices.shape[0]

    @property
    def peak_slip_m(self) -> float:
        """Maximum subfault slip (m)."""
        return float(np.max(self.slip_m))

    @property
    def duration_s(self) -> float:
        """Source duration: last onset plus that subfault's rise time."""
        return float(np.max(self.onset_time_s + self.rise_time_s))

    def moment(self, geometry: FaultGeometry) -> float:
        """Realized seismic moment (N m) on a given mesh."""
        area_m2 = geometry.area_km2[self.subfault_indices] * 1e6
        return float(np.sum(geometry.rigidity_pa * area_m2 * self.slip_m))


class RuptureGenerator:
    """Stochastic rupture factory bound to a fault geometry.

    Parameters
    ----------
    geometry:
        The fault mesh to generate on.
    distances:
        Precomputed distance matrices; computed from the geometry when
        omitted (slow path — the FDW always recycles).
    scaling:
        Rupture-dimension scaling law.
    mw_range:
        Inclusive (min, max) target magnitude range; FakeQuakes catalogs
        for EEW training span roughly Mw 7.5-9.2.
    hurst:
        Von Kármán Hurst exponent.
    n_kl_modes:
        K-L truncation per rupture patch; ``None`` keeps all modes.
    slip_cv:
        Coefficient of variation of the log-slip field (heterogeneity).
    magnitude_law:
        How random target magnitudes are drawn: ``"uniform"`` (balanced
        ML training sets, the default) or ``"gutenberg_richter"``
        (realistic seismicity; see :mod:`repro.seismo.catalog`).
    b_value:
        Gutenberg-Richter slope when that law is selected.
    kl_cache:
        Optional :class:`~repro.seismo.klcache.KLCache` that memoizes
        the per-patch K-L eigendecomposition (the dominant per-rupture
        cost). ``None`` computes every basis directly; an exact-mode
        cache is bit-identical to the direct path, a quantized cache
        trades numerics for hit rate (see the cache docs).
    """

    def __init__(
        self,
        geometry: FaultGeometry,
        distances: DistanceMatrices | None = None,
        scaling: ScalingLaw = SUBDUCTION_INTERFACE,
        mw_range: tuple[float, float] = (7.5, 9.2),
        hurst: float = 0.75,
        n_kl_modes: int | None = 64,
        slip_cv: float = 0.55,
        magnitude_law: str = "uniform",
        b_value: float = 1.0,
        kl_cache: KLCache | None = None,
    ) -> None:
        if mw_range[0] > mw_range[1]:
            raise RuptureError(f"invalid magnitude range {mw_range}")
        if slip_cv <= 0:
            raise RuptureError(f"slip_cv must be positive, got {slip_cv}")
        if magnitude_law not in ("uniform", "gutenberg_richter"):
            raise RuptureError(
                f"magnitude_law must be 'uniform' or 'gutenberg_richter', "
                f"got {magnitude_law!r}"
            )
        if b_value <= 0:
            raise RuptureError(f"b_value must be positive, got {b_value}")
        self.magnitude_law = magnitude_law
        self.b_value = float(b_value)
        self.geometry = geometry
        self.distances = distances or DistanceMatrices.from_geometry(geometry)
        if self.distances.n_subfaults != geometry.n_subfaults:
            raise RuptureError(
                f"distance matrices built for {self.distances.n_subfaults} "
                f"subfaults, geometry has {geometry.n_subfaults}"
            )
        self.scaling = scaling
        self.mw_range = (float(mw_range[0]), float(mw_range[1]))
        self.hurst = float(hurst)
        self.n_kl_modes = n_kl_modes
        self.slip_cv = float(slip_cv)
        self.kl_cache = kl_cache
        # Cache ENU coordinates; reused by every rupture.
        self._east, self._north, self._depth = geometry.enu()

    # -- patch selection ------------------------------------------------------

    def _select_patch(
        self, length_km: float, width_km: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        """Pick a contiguous mesh window of ~length x width around a
        random hypocenter; returns (patch indices, hypocenter position
        within the patch)."""
        geom = self.geometry
        sub_len = float(np.mean(geom.length_km))
        sub_wid = float(np.mean(geom.width_km))
        n_s = max(1, min(geom.n_strike, int(round(length_km / sub_len))))
        n_d = max(1, min(geom.n_dip, int(round(width_km / sub_wid))))

        s0 = int(rng.integers(0, geom.n_strike - n_s + 1))
        d0 = int(rng.integers(0, geom.n_dip - n_d + 1))
        strike_rows = np.arange(s0, s0 + n_s)
        dip_cols = np.arange(d0, d0 + n_d)
        patch = (strike_rows[:, None] * geom.n_dip + dip_cols[None, :]).ravel()

        # Hypocenter: a random subfault in the deeper half of the patch
        # (megathrust nucleation bias) — FakeQuakes randomizes similarly.
        dip_idx_in_patch = np.asarray(geom.dip_index(patch))
        deep_half = np.flatnonzero(dip_idx_in_patch >= np.median(dip_idx_in_patch))
        hypo_pos = int(rng.choice(deep_half)) if deep_half.size else int(rng.integers(patch.size))
        return patch, hypo_pos

    # -- slip sampling ---------------------------------------------------------

    def _sample_slip(
        self,
        patch: np.ndarray,
        length_km: float,
        width_km: float,
        target_mw: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Correlated lognormal slip on the patch, moment-closed."""
        # Correlation lengths scale with rupture dimensions (Melgar &
        # Hayes 2019-style fractional lengths).
        corr_s = max(1e-3, 0.38 * length_km)
        corr_d = max(1e-3, 0.27 * width_km)
        k = None if self.n_kl_modes is None else min(self.n_kl_modes, patch.size)
        if self.kl_cache is not None:
            basis = self.kl_cache.get_or_compute(
                self.distances, patch, corr_s, corr_d, hurst=self.hurst, n_modes=k
            )
        else:
            d_s = self.distances.along_strike[np.ix_(patch, patch)]
            d_d = self.distances.down_dip[np.ix_(patch, patch)]
            corr = von_karman_correlation(d_s, d_d, corr_s, corr_d, self.hurst)
            basis = KarhunenLoeveBasis.from_correlation(corr, n_modes=k)
        gaussian = basis.sample(rng)

        # Lognormal positivity transform with configured heterogeneity.
        sigma_log = np.sqrt(np.log(1.0 + self.slip_cv**2))
        raw = np.exp(sigma_log * gaussian - 0.5 * sigma_log**2)

        # Taper toward the patch edges so slip does not end abruptly
        # (FakeQuakes applies an analogous edge taper).
        geom = self.geometry
        s_idx = np.asarray(geom.strike_index(patch), dtype=float)
        d_idx = np.asarray(geom.dip_index(patch), dtype=float)

        def _taper(x: np.ndarray) -> np.ndarray:
            lo, hi = x.min(), x.max()
            if hi == lo:
                return np.ones_like(x)
            u = (x - lo) / (hi - lo)
            return np.sin(np.pi * np.clip(u * 1.08 + 0.04, 0.0, 1.0)) ** 0.5

        raw = raw * _taper(s_idx) * _taper(d_idx)
        if np.all(raw == 0):
            raise RuptureError("degenerate slip realization (all-zero after taper)")

        # Moment closure: scale so sum(mu * A * D) == M0(target).
        area_m2 = geom.area_km2[patch] * 1e6
        m0_raw = float(np.sum(geom.rigidity_pa * area_m2 * raw))
        m0_target = float(moment_from_magnitude(target_mw))
        return raw * (m0_target / m0_raw)

    # -- public API --------------------------------------------------------------

    def generate(
        self,
        rng: np.random.Generator,
        rupture_id: str = "rupture.000000",
        target_mw: float | None = None,
    ) -> Rupture:
        """Generate a single rupture scenario.

        Parameters
        ----------
        rng:
            Random stream; callers own seeding (see :mod:`repro.rng`).
        rupture_id:
            Catalog identifier stored on the result.
        target_mw:
            Fixed target magnitude, or ``None`` to draw uniformly from
            the generator's range.
        """
        if target_mw is not None:
            mw = float(target_mw)
        elif self.magnitude_law == "gutenberg_richter":
            from repro.seismo.catalog import sample_gutenberg_richter

            mw = float(
                sample_gutenberg_richter(
                    1, rng, self.mw_range[0], self.mw_range[1], self.b_value
                )[0]
            )
        else:
            mw = float(rng.uniform(*self.mw_range))
        if not (self.mw_range[0] - 1e-9 <= mw <= self.mw_range[1] + 1e-9):
            raise RuptureError(
                f"target Mw {mw} outside generator range {self.mw_range}"
            )
        length_km, width_km = self.scaling.sample_dimensions(mw, rng)
        patch, hypo_pos = self._select_patch(length_km, width_km, rng)
        slip = self._sample_slip(patch, length_km, width_km, mw, rng)

        rise = rise_times(slip)
        onset = onset_times(
            self._east[patch], self._north[patch], self._depth[patch], hypo_pos
        )
        rupture = Rupture(
            rupture_id=rupture_id,
            target_mw=mw,
            actual_mw=float(
                magnitude_from_moment(
                    np.sum(
                        self.geometry.rigidity_pa
                        * self.geometry.area_km2[patch]
                        * 1e6
                        * slip
                    )
                )
            ),
            subfault_indices=patch,
            slip_m=slip,
            rise_time_s=rise,
            onset_time_s=onset,
            hypocenter_index=hypo_pos,
            metadata={
                "length_km": length_km,
                "width_km": width_km,
                "fault": self.geometry.name,
            },
        )
        return rupture

    def generate_many(
        self,
        count: int,
        rng: np.random.Generator,
        prefix: str = "rupture",
        start_index: int = 0,
    ) -> list[Rupture]:
        """Generate ``count`` ruptures with sequential catalog ids.

        This is the Phase-A kernel: an FDW A-phase job calls this with
        its chunk size and chunk-specific RNG.

        .. note::
           Because every rupture advances the *single* sequential
           ``rng``, this method is intentionally **not**
           partition-invariant: generating [0, k) and [k, n) with two
           calls does not reproduce one [0, n) call unless the caller
           re-keys the second stream. Catalog-level partition invariance
           lives one layer up in
           :meth:`repro.seismo.fakequakes.FakeQuakes.phase_a_ruptures`,
           which derives an independent RNG per catalog index.
        """
        if count < 0:
            raise RuptureError(f"count must be >= 0, got {count}")
        return [
            self.generate(rng, rupture_id=f"{prefix}.{start_index + i:06d}")
            for i in range(count)
        ]
