"""Okada (1985) surface displacement of a finite rectangular dislocation.

MudPy computes static displacement with finite-fault elastic solutions;
the canonical one is Okada's closed-form expressions for a rectangular
dislocation in an elastic half-space (Okada, BSSA 75(4), 1985,
"Surface deformation due to shear and tensile faults in a half-space").
This module implements the surface-displacement case for strike-slip
and dip-slip components, vectorized over observation points, and a
finite-fault Green's-function bank builder that can replace the
point-source approximation of :mod:`repro.seismo.greens`.

Conventions (Okada's):

* fault-local coordinates: x along strike, y up-dip-horizontal, origin
  at the *bottom-left corner* of the fault when looking along strike;
* the fault plane has length ``L`` along strike (0 <= x' <= L) and
  width ``W`` up-dip, dipping ``delta`` from horizontal;
* ``depth`` is the depth of the bottom edge (the origin), positive down;
* displacements are returned in fault-local (x, y, z-up) coordinates
  for unit slip; the bank builder rotates them to east/north/up.

The medium is a Poisson solid (lambda = mu), so Okada's
``mu/(lambda+mu)`` factor is 1/2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GreensFunctionError
from repro.seismo.geometry import FaultGeometry
from repro.seismo.greens import GreensFunctionBank
from repro.seismo.kinematics import DEFAULT_SHEAR_VELOCITY_KMS
from repro.seismo.stations import StationNetwork

__all__ = ["okada85", "compute_okada_gf_bank"]

#: mu / (lambda + mu) for a Poisson solid.
_ALPHA = 0.5

#: Numerical guard against division by zero in the singular terms.
_EPS = 1e-12


def _chinnery(f, x, p, L, W, const):
    """Chinnery's notation: f(xi, eta)|| evaluated at the 4 corners."""
    return (
        f(x, p, const)
        - f(x, p - W, const)
        - f(x - L, p, const)
        + f(x - L, p - W, const)
    )


def _build_terms(xi, eta, q, sd, cd):
    """Common geometric quantities for one (xi, eta) corner."""
    r = np.sqrt(xi**2 + eta**2 + q**2)
    ytilde = eta * cd + q * sd
    dtilde = eta * sd - q * cd
    return r, ytilde, dtilde


def _i_terms(xi, eta, q, r, ytilde, dtilde, sd, cd):
    """Okada's I1..I5 for the general (cos(delta) != 0) case."""
    big_x = np.sqrt(xi**2 + q**2)
    rd = r + dtilde
    # Guard the logs/denominators; Okada's expressions are finite for
    # surface observation of buried faults but intermediate terms can
    # graze zero at machine precision.
    rd = np.where(np.abs(rd) < _EPS, _EPS, rd)
    r_eta = r + eta
    r_eta = np.where(np.abs(r_eta) < _EPS, _EPS, r_eta)
    rx = r + big_x
    rx = np.where(np.abs(rx) < _EPS, _EPS, rx)

    ln_r_eta = np.log(r_eta)
    i5 = (
        _ALPHA
        * 2.0
        / cd
        * np.arctan(
            (eta * (big_x + q * cd) + big_x * rx * sd)
            / np.where(np.abs(xi) < _EPS, _EPS, xi * rx * cd)
        )
    )
    i5 = np.where(np.abs(xi) < _EPS, 0.0, i5)
    i4 = _ALPHA / cd * (np.log(rd) - sd * ln_r_eta)
    i3 = _ALPHA * (ytilde / (cd * rd) - ln_r_eta) + sd / cd * i4
    i2 = _ALPHA * (-ln_r_eta) - i3
    i1 = _ALPHA * (-xi / (cd * rd)) - sd / cd * i5
    return i1, i2, i3, i4, i5


def _strike_slip_corner(xi, eta, const):
    """(ux, uy, uz) contribution of one corner for unit strike slip."""
    q, sd, cd = const
    r, ytilde, dtilde = _build_terms(xi, eta, q, sd, cd)
    i1, i2, _, i4, _ = _i_terms(xi, eta, q, r, ytilde, dtilde, sd, cd)
    r_eta = np.where(np.abs(r + eta) < _EPS, _EPS, r + eta)
    qr = np.where(np.abs(q * r) < _EPS, _EPS, q * r)
    theta = np.arctan(xi * eta / qr)
    theta = np.where(np.abs(q) < _EPS, 0.0, theta)
    ux = xi * q / (r * r_eta) + theta + i1 * sd
    uy = ytilde * q / (r * r_eta) + q * cd / r_eta + i2 * sd
    uz = dtilde * q / (r * r_eta) + q * sd / r_eta + i4 * sd
    return ux, uy, uz


def _dip_slip_corner(xi, eta, const):
    """(ux, uy, uz) contribution of one corner for unit dip slip."""
    q, sd, cd = const
    r, ytilde, dtilde = _build_terms(xi, eta, q, sd, cd)
    i1, _, i3, _, i5 = _i_terms(xi, eta, q, r, ytilde, dtilde, sd, cd)
    r_xi = np.where(np.abs(r + xi) < _EPS, _EPS, r + xi)
    qr = np.where(np.abs(q * r) < _EPS, _EPS, q * r)
    theta = np.arctan(xi * eta / qr)
    theta = np.where(np.abs(q) < _EPS, 0.0, theta)
    ux = q / r - i3 * sd * cd
    uy = ytilde * q / (r * r_xi) + cd * theta - i1 * sd * cd
    uz = dtilde * q / (r * r_xi) + sd * theta - i5 * sd * cd
    return ux, uy, uz


def okada85(
    x: np.ndarray | float,
    y: np.ndarray | float,
    depth_km: float,
    dip_deg: float,
    length_km: float,
    width_km: float,
    strike_slip_m: float = 0.0,
    dip_slip_m: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Surface displacement (m) of a rectangular dislocation.

    Parameters
    ----------
    x, y:
        Observation coordinates (km) in the fault-local frame: ``x``
        along strike from the bottom-left corner, ``y`` horizontal,
        perpendicular to strike (positive on the up-dip side).
    depth_km:
        Depth of the fault's bottom edge (km, > 0 — the fault must be
        buried).
    dip_deg:
        Dip angle in (0, 90]; the delta=90 degenerate forms of Okada's
        I-terms are avoided by capping at 89.999 deg (indistinguishable
        at double precision for surface points).
    length_km, width_km:
        Fault plane dimensions (along strike / up dip).
    strike_slip_m, dip_slip_m:
        Slip components; displacements superpose linearly.

    Returns
    -------
    (ux, uy, uz):
        Displacement components in km-free metres: ``ux`` along strike,
        ``uy`` horizontal perpendicular (up-dip positive), ``uz`` up.
    """
    if depth_km <= 0:
        raise GreensFunctionError(f"bottom-edge depth must be > 0 km, got {depth_km}")
    if not (0.0 < dip_deg <= 90.0):
        raise GreensFunctionError(f"dip must be in (0, 90], got {dip_deg}")
    if length_km <= 0 or width_km <= 0:
        raise GreensFunctionError("fault dimensions must be positive")
    dip = min(dip_deg, 89.999)
    sd = np.sin(np.radians(dip))
    cd = np.cos(np.radians(dip))
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    d = depth_km
    p = y * cd + d * sd
    q = y * sd - d * cd
    const = (q, sd, cd)

    ux = np.zeros(np.broadcast(x, y).shape)
    uy = np.zeros_like(ux)
    uz = np.zeros_like(ux)
    if strike_slip_m != 0.0:
        f = lambda xi, eta, c: _strike_slip_corner(xi, eta, c)  # noqa: E731
        sx = _chinnery(lambda a, b, c: f(a, b, c)[0], x, p, length_km, width_km, const)
        sy = _chinnery(lambda a, b, c: f(a, b, c)[1], x, p, length_km, width_km, const)
        sz = _chinnery(lambda a, b, c: f(a, b, c)[2], x, p, length_km, width_km, const)
        factor = -strike_slip_m / (2.0 * np.pi)
        ux += factor * sx
        uy += factor * sy
        uz += factor * sz
    if dip_slip_m != 0.0:
        g = lambda xi, eta, c: _dip_slip_corner(xi, eta, c)  # noqa: E731
        dx = _chinnery(lambda a, b, c: g(a, b, c)[0], x, p, length_km, width_km, const)
        dy = _chinnery(lambda a, b, c: g(a, b, c)[1], x, p, length_km, width_km, const)
        dz = _chinnery(lambda a, b, c: g(a, b, c)[2], x, p, length_km, width_km, const)
        factor = -dip_slip_m / (2.0 * np.pi)
        ux += factor * dx
        uy += factor * dy
        uz += factor * dz
    return ux, uy, uz


def _reference_bank_arrays(
    geometry: FaultGeometry,
    network: StationNetwork,
    ss: float,
    ds: float,
    shear_velocity_kms: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-subfault Python loop — the bit-identity oracle.

    Kept verbatim from the original implementation so the vectorized
    engine can be pinned against it (same pattern as the DES pool's
    reference engine).
    """
    east_f, north_f, depth_f = geometry.enu()
    east_s, north_s = geometry.projection.to_enu(network.lons, network.lats)
    n_sta = len(network)
    n_sub = geometry.n_subfaults
    statics = np.zeros((n_sta, n_sub, 3))
    travel = np.zeros((n_sta, n_sub))

    for j in range(n_sub):
        strike = np.radians(geometry.strike_deg[j])
        dip = float(geometry.dip_deg[j])
        length = float(geometry.length_km[j])
        width = float(geometry.width_km[j])
        # Bottom-edge depth of the subfault plane (center + half the
        # vertical extent of the dipping rectangle).
        half_dz = 0.5 * width * np.sin(np.radians(dip))
        bottom_depth = float(depth_f[j]) + half_dz

        # Station offsets from the subfault center, rotated into the
        # fault frame (x along strike, y up-dip horizontal). Strike phi
        # measured clockwise from north; along-strike unit vector is
        # (sin phi, cos phi) in (east, north).
        de = east_s - east_f[j]
        dn = north_s - north_f[j]
        sx = de * np.sin(strike) + dn * np.cos(strike)
        sy_updip = -(de * np.cos(strike) - dn * np.sin(strike))
        # Okada origin: bottom-left corner -> shift by half length along
        # strike and by the horizontal reach of the lower half width.
        x_loc = sx + 0.5 * length
        y_loc = sy_updip + 0.5 * width * np.cos(np.radians(dip))

        ux, uy, uz = okada85(
            x_loc,
            y_loc,
            depth_km=bottom_depth,
            dip_deg=dip,
            length_km=length,
            width_km=width,
            strike_slip_m=ss,
            dip_slip_m=ds,
        )
        # Rotate fault-local (x: along strike, y: horizontal up-dip
        # normal) back to east/north. The up-dip horizontal direction
        # is 90 deg counterclockwise... defined consistently with the
        # sy_updip projection above.
        ue = ux * np.sin(strike) - uy * np.cos(strike)
        un = ux * np.cos(strike) + uy * np.sin(strike)
        statics[:, j, 0] = ue
        statics[:, j, 1] = un
        statics[:, j, 2] = uz
        slant = np.sqrt(de**2 + dn**2 + depth_f[j] ** 2)
        travel[:, j] = slant / shear_velocity_kms

    return statics, travel


def _vector_bank_arrays(
    geometry: FaultGeometry,
    network: StationNetwork,
    ss: float,
    ds: float,
    shear_velocity_kms: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Broadcast Okada over all (station, subfault) pairs at once.

    The Chinnery corner difference f(x,p) - f(x,p-W) - f(x-L,p) +
    f(x-L,p-W) is evaluated on a ``(n_sta, n_sub, 4)`` tensor: axis 2
    holds the four corner arguments, so each corner function runs once
    per slip component instead of ``3 * n_sub`` times. Every elementwise
    expression matches the scalar path operation-for-operation, which is
    what makes the result bit-identical to the reference loop (IEEE-754
    ufunc loops do not depend on array shape).
    """
    east_f, north_f, depth_f = geometry.enu()
    east_s, north_s = geometry.projection.to_enu(network.lons, network.lats)
    n_sta = len(network)
    n_sub = geometry.n_subfaults

    dip_deg = geometry.dip_deg.astype(float)
    length = geometry.length_km.astype(float)
    width = geometry.width_km.astype(float)
    strike = np.radians(geometry.strike_deg.astype(float))

    half_dz = 0.5 * width * np.sin(np.radians(dip_deg))
    bottom_depth = depth_f + half_dz
    if np.any(bottom_depth <= 0):
        bad = float(bottom_depth.min())
        raise GreensFunctionError(f"bottom-edge depth must be > 0 km, got {bad}")
    if np.any(~((dip_deg > 0.0) & (dip_deg <= 90.0))):
        raise GreensFunctionError(f"dip must be in (0, 90], got {dip_deg}")
    if np.any(length <= 0) or np.any(width <= 0):
        raise GreensFunctionError("fault dimensions must be positive")

    # Station offsets -> fault-local frames, all subfaults at once.
    de = east_s[:, None] - east_f[None, :]
    dn = north_s[:, None] - north_f[None, :]
    sin_s = np.sin(strike)[None, :]
    cos_s = np.cos(strike)[None, :]
    sx = de * sin_s + dn * cos_s
    sy_updip = -(de * cos_s - dn * sin_s)
    x_loc = sx + (0.5 * length)[None, :]
    y_loc = sy_updip + (0.5 * width * np.cos(np.radians(dip_deg)))[None, :]

    # Corner tensor: axis 2 enumerates Chinnery's four (xi, eta)
    # arguments, signed (+, -, -, +) when recombined below.
    dip = np.minimum(dip_deg, 89.999)
    sd = np.sin(np.radians(dip))[None, :, None]
    cd = np.cos(np.radians(dip))[None, :, None]
    d = bottom_depth[None, :, None]
    yv = y_loc[:, :, None]
    p = yv * cd + d * sd
    q = yv * sd - d * cd
    const = (q, sd, cd)
    L = length[None, :, None]
    W = width[None, :, None]
    xv = x_loc[:, :, None]
    xi = np.concatenate([xv, xv, xv - L, xv - L], axis=2)
    eta = np.concatenate([p, p - W, p, p - W], axis=2)

    ux = np.zeros((n_sta, n_sub))
    uy = np.zeros_like(ux)
    uz = np.zeros_like(ux)
    for slip_amt, corner in ((ss, _strike_slip_corner), (ds, _dip_slip_corner)):
        if slip_amt != 0.0:
            cx, cy, cz = corner(xi, eta, const)
            factor = -slip_amt / (2.0 * np.pi)
            ux += factor * (cx[..., 0] - cx[..., 1] - cx[..., 2] + cx[..., 3])
            uy += factor * (cy[..., 0] - cy[..., 1] - cy[..., 2] + cy[..., 3])
            uz += factor * (cz[..., 0] - cz[..., 1] - cz[..., 2] + cz[..., 3])

    ue = ux * sin_s - uy * cos_s
    un = ux * cos_s + uy * sin_s
    statics = np.stack([ue, un, uz], axis=2)
    slant = np.sqrt(de**2 + dn**2 + (depth_f**2)[None, :])
    travel = slant / shear_velocity_kms
    return statics, travel


_ENGINES = ("vector", "reference")


def compute_okada_gf_bank(
    geometry: FaultGeometry,
    network: StationNetwork,
    rake_deg: float = 90.0,
    shear_velocity_kms: float = DEFAULT_SHEAR_VELOCITY_KMS,
    engine: str = "vector",
    dtype: str | np.dtype = "float64",
) -> GreensFunctionBank:
    """Finite-fault static GF bank via Okada's solution.

    For each subfault, stations are rotated into the subfault's local
    frame, the Okada displacement for 1 m of rake-directed slip is
    evaluated, and the result is rotated back to (east, north, up).
    Drop-in compatible with :func:`repro.seismo.greens.compute_gf_bank`
    (same :class:`GreensFunctionBank` product), and more accurate in the
    near field where the point-source approximation breaks down.

    ``engine="vector"`` (default) broadcasts the Chinnery corner
    evaluations over all (station, subfault) pairs; ``"reference"`` is
    the original per-subfault loop, kept as the bit-identity oracle.
    Both always compute in float64; ``dtype="float32"`` casts the
    finished bank for half-size storage/transfer (see DESIGN.md for the
    measured error budget).
    """
    if engine not in _ENGINES:
        raise GreensFunctionError(
            f"unknown okada engine {engine!r}; expected one of {_ENGINES}"
        )
    out_dtype = np.dtype(dtype)
    if out_dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise GreensFunctionError(
            f"GF bank dtype must be float64 or float32, got {out_dtype}"
        )

    rake = np.radians(rake_deg)
    ss = float(np.cos(rake))  # strike-slip component of unit slip
    ds = float(np.sin(rake))  # dip-slip component

    build = _vector_bank_arrays if engine == "vector" else _reference_bank_arrays
    statics, travel = build(geometry, network, ss, ds, shear_velocity_kms)
    if out_dtype != np.dtype(np.float64):
        statics = statics.astype(out_dtype)
        travel = travel.astype(out_dtype)

    return GreensFunctionBank(
        statics=statics,
        travel_time_s=travel,
        station_names=tuple(network.names),
        fault_name=geometry.name,
    )
