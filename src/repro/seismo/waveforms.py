"""Kinematic GNSS waveform synthesis (the FDW Phase-C kernel).

Each subfault of a rupture contributes its static displacement through a
smooth slip ramp that arrives at ``onset + travel_time``; summing the
lagged, slip-weighted contributions over the patch gives the 3-component
displacement time series at every station — the characteristic "step
with overshoot-free ramp" shape of high-rate GNSS records of large
earthquakes. Optionally, realistic GNSS noise (white + random walk) is
added, following the noise characterization of Melgar et al. (2020).

The synthesis is vectorized per station over (subfaults x samples), so
cost scales as O(n_stations * n_patch * n_samples) — the station-count
scaling the paper's Phase C job runtimes exhibit (15-20 min at 121
stations vs. <1 min at 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import WaveformError
from repro.seismo.greens import GreensFunctionBank
from repro.seismo.ruptures import Rupture

__all__ = ["WaveformSet", "WaveformSynthesizer", "GnssNoiseModel"]

COMPONENTS = ("east", "north", "up")


@dataclass(frozen=True)
class GnssNoiseModel:
    """Additive GNSS position-noise model.

    White noise plus a random-walk component, the standard first-order
    description of real-time GNSS position error.

    Attributes
    ----------
    white_sigma_m:
        Standard deviation of the per-sample white component (m).
    walk_sigma_m:
        Per-sqrt(second) amplitude of the random walk (m/sqrt(s)).
    """

    white_sigma_m: float = 0.005
    walk_sigma_m: float = 0.0005

    def __post_init__(self) -> None:
        if self.white_sigma_m < 0 or self.walk_sigma_m < 0:
            raise WaveformError("noise amplitudes must be non-negative")

    def sample(
        self, rng: np.random.Generator, shape: tuple[int, ...], dt_s: float
    ) -> np.ndarray:
        """Noise realization with time as the last axis."""
        white = rng.normal(0.0, self.white_sigma_m, shape)
        steps = rng.normal(0.0, self.walk_sigma_m * np.sqrt(dt_s), shape)
        walk = np.cumsum(steps, axis=-1)
        return white + walk


@dataclass(frozen=True)
class WaveformSet:
    """Synthesized displacement waveforms for one rupture.

    Attributes
    ----------
    rupture_id:
        Id of the generating rupture.
    data:
        (n_stations, 3, n_samples) displacement in metres; component
        axis ordered (east, north, up).
    dt_s:
        Sample interval in seconds (1.0 for 1 Hz GNSS).
    station_names:
        Axis-0 labels.
    """

    rupture_id: str
    data: np.ndarray
    dt_s: float
    station_names: tuple[str, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.data.ndim != 3 or self.data.shape[1] != 3:
            raise WaveformError(f"data must be (nsta, 3, nt), got {self.data.shape}")
        if len(self.station_names) != self.data.shape[0]:
            raise WaveformError("station_names length != data stations axis")
        if self.dt_s <= 0:
            raise WaveformError(f"dt must be positive, got {self.dt_s}")
        if not np.all(np.isfinite(self.data)):
            raise WaveformError("waveforms contain non-finite values")

    @property
    def n_stations(self) -> int:
        """Number of stations."""
        return self.data.shape[0]

    @property
    def n_samples(self) -> int:
        """Number of time samples."""
        return self.data.shape[2]

    @property
    def times_s(self) -> np.ndarray:
        """Sample times in seconds from rupture origin."""
        return np.arange(self.n_samples) * self.dt_s

    def pgd_m(self) -> np.ndarray:
        """Peak ground displacement per station: max 3-D vector norm."""
        norm = np.sqrt(np.sum(self.data**2, axis=1))
        return np.max(norm, axis=1)

    def final_offsets_m(self) -> np.ndarray:
        """(n_stations, 3) displacement at the final sample (static field)."""
        return self.data[:, :, -1].copy()

    def station(self, name: str) -> np.ndarray:
        """(3, n_samples) series for one station by code."""
        try:
            idx = self.station_names.index(name)
        except ValueError:
            raise WaveformError(f"station {name!r} not in waveform set") from None
        return self.data[idx]

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write to compressed ``.npz`` (the per-rupture product file)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            rupture_id=np.array(self.rupture_id),
            data=self.data,
            dt_s=np.array(self.dt_s),
            station_names=np.array(self.station_names),
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "WaveformSet":
        """Read a set written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise WaveformError(f"waveform file not found: {path}")
        with np.load(path, allow_pickle=False) as data:
            return cls(
                rupture_id=str(data["rupture_id"]),
                data=data["data"],
                dt_s=float(data["dt_s"]),
                station_names=tuple(str(n) for n in data["station_names"]),
            )


class WaveformSynthesizer:
    """Phase-C kernel: rupture + GF bank -> station waveforms.

    Parameters
    ----------
    gf_bank:
        Precomputed Green's functions for the full fault mesh.
    dt_s:
        Output sample interval (1 s for high-rate GNSS).
    duration_s:
        Record length; ``None`` sizes it from the source duration plus
        the slowest travel time plus a tail.
    noise:
        Optional additive noise model; omit for clean synthetics.
    """

    def __init__(
        self,
        gf_bank: GreensFunctionBank,
        dt_s: float = 1.0,
        duration_s: float | None = None,
        noise: GnssNoiseModel | None = None,
    ) -> None:
        if dt_s <= 0:
            raise WaveformError(f"dt must be positive, got {dt_s}")
        if duration_s is not None and duration_s <= 0:
            raise WaveformError(f"duration must be positive, got {duration_s}")
        self.gf_bank = gf_bank
        self.dt_s = float(dt_s)
        self.duration_s = duration_s
        self.noise = noise

    def _record_length(self, rupture: Rupture, patch_tt: np.ndarray) -> int:
        if self.duration_s is not None:
            return max(2, int(np.ceil(self.duration_s / self.dt_s)))
        t_end = rupture.duration_s + float(np.max(patch_tt)) + 60.0
        return max(2, int(np.ceil(t_end / self.dt_s)) + 1)

    def synthesize(
        self,
        rupture: Rupture,
        rng: np.random.Generator | None = None,
    ) -> WaveformSet:
        """Synthesize the waveform set for one rupture.

        Raises
        ------
        WaveformError
            If the rupture references subfaults outside the GF bank, or
            noise is configured but no ``rng`` is supplied.
        """
        patch = rupture.subfault_indices
        if patch.max() >= self.gf_bank.n_subfaults:
            raise WaveformError(
                f"rupture patch index {patch.max()} outside GF bank with "
                f"{self.gf_bank.n_subfaults} subfaults"
            )
        if self.noise is not None and rng is None:
            raise WaveformError("noise model configured but no rng supplied")

        gf = self.gf_bank.statics[:, patch, :]  # (nsta, npatch, 3) view
        tt = self.gf_bank.travel_time_s[:, patch]  # (nsta, npatch)
        nt = self._record_length(rupture, tt)
        times = np.arange(nt) * self.dt_s

        n_sta = self.gf_bank.n_stations
        out = np.empty((n_sta, 3, nt))
        slip = rupture.slip_m
        onset = rupture.onset_time_s
        rise = np.maximum(rupture.rise_time_s, self.dt_s * 0.5)

        # Per-station vectorized accumulation; (npatch, nt) intermediate
        # keeps memory bounded for large meshes (see DESIGN.md).
        for i in range(n_sta):
            arrival = onset + tt[i]  # (npatch,)
            x = (times[None, :] - arrival[:, None]) / rise[:, None]
            ramp = 0.5 * (1.0 - np.cos(np.pi * np.clip(x, 0.0, 1.0)))
            weighted = gf[i] * slip[:, None]  # (npatch, 3)
            out[i] = weighted.T @ ramp  # (3, nt)

        if self.noise is not None:
            out += self.noise.sample(rng, out.shape, self.dt_s)  # type: ignore[arg-type]

        return WaveformSet(
            rupture_id=rupture.rupture_id,
            data=out,
            dt_s=self.dt_s,
            station_names=self.gf_bank.station_names,
            metadata={"target_mw": rupture.target_mw},
        )

    def synthesize_many(
        self,
        ruptures: list[Rupture],
        rng: np.random.Generator | None = None,
    ) -> list[WaveformSet]:
        """Synthesize waveform sets for a chunk of ruptures (a C-phase job).

        Delegates to :meth:`synthesize_batch`, which produces bitwise
        the same products as calling :meth:`synthesize` in a loop.
        """
        return self.synthesize_batch(ruptures, rngs=rng)

    def synthesize_batch(
        self,
        ruptures: list[Rupture],
        rngs: list[np.random.Generator | None]
        | np.random.Generator
        | None = None,
    ) -> list[WaveformSet]:
        """Batched Phase-C kernel: one call synthesizes a whole chunk.

        All ruptures' patches are concatenated along one axis so the
        expensive slip-ramp evaluation runs as stacked array kernels
        over the whole chunk instead of a Python loop per rupture —
        per-station cost drops from ``n_ruptures`` small vector-op
        rounds to one. Products are **bit-identical** to calling
        :meth:`synthesize` per rupture (the per-rupture matmul operands
        are reconstructed with the exact values and memory layout of
        the scalar path).

        Parameters
        ----------
        rngs:
            ``None`` (clean synthetics), one shared generator (noise
            drawn per rupture in catalog order, matching a
            :meth:`synthesize` loop), or one generator per rupture
            (the chunk-job mode where each rupture owns a keyed noise
            stream).
        """
        if not ruptures:
            return []
        if isinstance(rngs, np.random.Generator) or rngs is None:
            rng_list: list[np.random.Generator | None] = [rngs] * len(ruptures)
        else:
            rng_list = list(rngs)
            if len(rng_list) != len(ruptures):
                raise WaveformError(
                    f"got {len(rng_list)} rngs for {len(ruptures)} ruptures"
                )

        bank = self.gf_bank
        for rupture in ruptures:
            if rupture.subfault_indices.max() >= bank.n_subfaults:
                raise WaveformError(
                    f"rupture patch index {rupture.subfault_indices.max()} "
                    f"outside GF bank with {bank.n_subfaults} subfaults"
                )
        if self.noise is not None and any(r is None for r in rng_list):
            raise WaveformError("noise model configured but no rng supplied")

        # Concatenate every rupture's patch into one axis; `segments`
        # holds each rupture's [start, end) slice of that axis.
        counts = [r.n_subfaults for r in ruptures]
        offsets = np.concatenate([[0], np.cumsum(counts)])
        segments = [
            (int(offsets[k]), int(offsets[k + 1])) for k in range(len(ruptures))
        ]
        patch_all = np.concatenate([r.subfault_indices for r in ruptures])
        slip_all = np.concatenate([r.slip_m for r in ruptures])
        onsets = [r.onset_time_s for r in ruptures]
        rises = [
            np.maximum(r.rise_time_s, self.dt_s * 0.5) for r in ruptures
        ]

        gf_all = bank.statics[:, patch_all, :]  # (nsta, sum_npatch, 3)
        tt_all = bank.travel_time_s[:, patch_all]  # (nsta, sum_npatch)
        nts = [
            self._record_length(rupture, tt_all[:, s:e])
            for rupture, (s, e) in zip(ruptures, segments)
        ]
        times = np.arange(max(nts)) * self.dt_s

        # Records are ragged (each rupture sizes its own nt), so the
        # chunk's (patch x time) planes are packed back-to-back into one
        # flat buffer: no padding, and each rupture's plane is a
        # C-contiguous (npatch, nt) view — the exact matmul operand the
        # scalar path builds, which is what keeps products bit-identical.
        plane_sizes = [c * nt for c, nt in zip(counts, nts)]
        plane_offsets = np.concatenate([[0], np.cumsum(plane_sizes)])
        buf = np.empty(int(plane_offsets[-1]))
        planes = [
            buf[int(plane_offsets[k]) : int(plane_offsets[k + 1])].reshape(
                counts[k], nts[k]
            )
            for k in range(len(ruptures))
        ]

        # The ramp transform t(x) = 0.5*(1 - cos(pi*x)) fixes the
        # clipped plateaus exactly (cos(0) == 1 and cos(pi) == -1 in
        # IEEE double), so after clipping only the narrow rise band
        # 0 < x < 1 — typically a few percent of the plane — needs the
        # transcendental evaluation. Guard the fixed points anyway so an
        # exotic libm falls back to transforming everything.
        plateaus_exact = (
            0.5 * (1.0 - np.cos(np.pi * 0.0)) == 0.0
            and 0.5 * (1.0 - np.cos(np.pi * 1.0)) == 1.0
        )

        n_sta = bank.n_stations
        outs = [np.empty((n_sta, 3, nt)) for nt in nts]
        for i in range(n_sta):
            for k, (s, e) in enumerate(segments):
                arrival = onsets[k] + tt_all[i, s:e]  # (npatch,)
                np.subtract(times[None, : nts[k]], arrival[:, None], out=planes[k])
                planes[k] /= rises[k][:, None]
            # The ramp passes run once over the whole chunk — stacked
            # kernels instead of a Python loop of per-rupture rounds —
            # and the cos chain touches only the unsaturated band.
            np.clip(buf, 0.0, 1.0, out=buf)
            if plateaus_exact:
                band = np.flatnonzero((buf > 0.0) & (buf < 1.0))
                vals = buf[band]
            else:  # pragma: no cover - non-IEEE libm fallback
                band = slice(None)
                vals = buf.copy()
            np.multiply(np.pi, vals, out=vals)
            np.cos(vals, out=vals)
            np.subtract(1.0, vals, out=vals)
            np.multiply(0.5, vals, out=vals)
            buf[band] = vals
            weighted_all = gf_all[i] * slip_all[:, None]
            for k, (s, e) in enumerate(segments):
                outs[k][i] = weighted_all[s:e].T @ planes[k]

        sets: list[WaveformSet] = []
        for k, rupture in enumerate(ruptures):
            out = outs[k]
            if self.noise is not None:
                out = out + self.noise.sample(rng_list[k], out.shape, self.dt_s)  # type: ignore[arg-type]
            sets.append(
                WaveformSet(
                    rupture_id=rupture.rupture_id,
                    data=out,
                    dt_s=self.dt_s,
                    station_names=bank.station_names,
                    metadata={"target_mw": rupture.target_mw},
                )
            )
        return sets
