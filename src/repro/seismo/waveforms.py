"""Kinematic GNSS waveform synthesis (the FDW Phase-C kernel).

Each subfault of a rupture contributes its static displacement through a
smooth slip ramp that arrives at ``onset + travel_time``; summing the
lagged, slip-weighted contributions over the patch gives the 3-component
displacement time series at every station — the characteristic "step
with overshoot-free ramp" shape of high-rate GNSS records of large
earthquakes. Optionally, realistic GNSS noise (white + random walk) is
added, following the noise characterization of Melgar et al. (2020).

The synthesis is vectorized per station over (subfaults x samples), so
cost scales as O(n_stations * n_patch * n_samples) — the station-count
scaling the paper's Phase C job runtimes exhibit (15-20 min at 121
stations vs. <1 min at 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import WaveformError
from repro.seismo.greens import GreensFunctionBank
from repro.seismo.ruptures import Rupture

__all__ = ["WaveformSet", "WaveformSynthesizer", "GnssNoiseModel"]

COMPONENTS = ("east", "north", "up")


@dataclass(frozen=True)
class GnssNoiseModel:
    """Additive GNSS position-noise model.

    White noise plus a random-walk component, the standard first-order
    description of real-time GNSS position error.

    Attributes
    ----------
    white_sigma_m:
        Standard deviation of the per-sample white component (m).
    walk_sigma_m:
        Per-sqrt(second) amplitude of the random walk (m/sqrt(s)).
    """

    white_sigma_m: float = 0.005
    walk_sigma_m: float = 0.0005

    def __post_init__(self) -> None:
        if self.white_sigma_m < 0 or self.walk_sigma_m < 0:
            raise WaveformError("noise amplitudes must be non-negative")

    def sample(
        self, rng: np.random.Generator, shape: tuple[int, ...], dt_s: float
    ) -> np.ndarray:
        """Noise realization with time as the last axis."""
        white = rng.normal(0.0, self.white_sigma_m, shape)
        steps = rng.normal(0.0, self.walk_sigma_m * np.sqrt(dt_s), shape)
        walk = np.cumsum(steps, axis=-1)
        return white + walk


@dataclass(frozen=True)
class WaveformSet:
    """Synthesized displacement waveforms for one rupture.

    Attributes
    ----------
    rupture_id:
        Id of the generating rupture.
    data:
        (n_stations, 3, n_samples) displacement in metres; component
        axis ordered (east, north, up).
    dt_s:
        Sample interval in seconds (1.0 for 1 Hz GNSS).
    station_names:
        Axis-0 labels.
    """

    rupture_id: str
    data: np.ndarray
    dt_s: float
    station_names: tuple[str, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.data.ndim != 3 or self.data.shape[1] != 3:
            raise WaveformError(f"data must be (nsta, 3, nt), got {self.data.shape}")
        if len(self.station_names) != self.data.shape[0]:
            raise WaveformError("station_names length != data stations axis")
        if self.dt_s <= 0:
            raise WaveformError(f"dt must be positive, got {self.dt_s}")
        if not np.all(np.isfinite(self.data)):
            raise WaveformError("waveforms contain non-finite values")

    @property
    def n_stations(self) -> int:
        """Number of stations."""
        return self.data.shape[0]

    @property
    def n_samples(self) -> int:
        """Number of time samples."""
        return self.data.shape[2]

    @property
    def times_s(self) -> np.ndarray:
        """Sample times in seconds from rupture origin."""
        return np.arange(self.n_samples) * self.dt_s

    def pgd_m(self) -> np.ndarray:
        """Peak ground displacement per station: max 3-D vector norm."""
        norm = np.sqrt(np.sum(self.data**2, axis=1))
        return np.max(norm, axis=1)

    def final_offsets_m(self) -> np.ndarray:
        """(n_stations, 3) displacement at the final sample (static field)."""
        return self.data[:, :, -1].copy()

    def station(self, name: str) -> np.ndarray:
        """(3, n_samples) series for one station by code."""
        try:
            idx = self.station_names.index(name)
        except ValueError:
            raise WaveformError(f"station {name!r} not in waveform set") from None
        return self.data[idx]

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write to compressed ``.npz`` (the per-rupture product file)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            rupture_id=np.array(self.rupture_id),
            data=self.data,
            dt_s=np.array(self.dt_s),
            station_names=np.array(self.station_names),
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "WaveformSet":
        """Read a set written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise WaveformError(f"waveform file not found: {path}")
        with np.load(path, allow_pickle=False) as data:
            return cls(
                rupture_id=str(data["rupture_id"]),
                data=data["data"],
                dt_s=float(data["dt_s"]),
                station_names=tuple(str(n) for n in data["station_names"]),
            )


class WaveformSynthesizer:
    """Phase-C kernel: rupture + GF bank -> station waveforms.

    Parameters
    ----------
    gf_bank:
        Precomputed Green's functions for the full fault mesh.
    dt_s:
        Output sample interval (1 s for high-rate GNSS).
    duration_s:
        Record length; ``None`` sizes it from the source duration plus
        the slowest travel time plus a tail.
    noise:
        Optional additive noise model; omit for clean synthetics.
    method:
        ``"time"`` (default) lags each subfault's ramp in the time
        domain — bit-identical between the scalar and batched paths.
        ``"fft"`` applies the arrival delays as phase shifts on the
        ``rfft`` of a shared complement-pulse stack; band-limited
        fractional-delay interpolation makes it approximate (relative
        PGD error ~1e-6, see DESIGN.md), so it is strictly opt-in.
    """

    _METHODS = ("time", "fft")

    #: Width (samples) of the raised-cosine wrap transition the FFT
    #: method parks past the record end (see :meth:`_synthesize_fft`).
    _FFT_WRAP_SAMPLES = 48

    def __init__(
        self,
        gf_bank: GreensFunctionBank,
        dt_s: float = 1.0,
        duration_s: float | None = None,
        noise: GnssNoiseModel | None = None,
        method: str = "time",
    ) -> None:
        if dt_s <= 0:
            raise WaveformError(f"dt must be positive, got {dt_s}")
        if duration_s is not None and duration_s <= 0:
            raise WaveformError(f"duration must be positive, got {duration_s}")
        if method not in self._METHODS:
            raise WaveformError(
                f"unknown synthesis method {method!r}; expected one of {self._METHODS}"
            )
        self.gf_bank = gf_bank
        self.dt_s = float(dt_s)
        self.duration_s = duration_s
        self.noise = noise
        self.method = method

    @property
    def _work_dtype(self) -> np.dtype:
        """Dtype the synthesis runs in — the bank's own dtype.

        A float32 bank keeps the whole ramp/matmul pipeline in float32
        (half the memory traffic, sgemm instead of dgemm); float64 banks
        keep the historical bit-exact pipeline.
        """
        return self.gf_bank.statics.dtype

    def _times(self, nt: int) -> np.ndarray:
        return (np.arange(nt) * self.dt_s).astype(self._work_dtype, copy=False)

    def _source_arrays(
        self, rupture: Rupture
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(slip, onset, floored rise) cast to the working dtype."""
        w = self._work_dtype
        slip = rupture.slip_m.astype(w, copy=False)
        onset = rupture.onset_time_s.astype(w, copy=False)
        rise = np.maximum(rupture.rise_time_s, self.dt_s * 0.5).astype(w, copy=False)
        return slip, onset, rise

    def _record_length(self, rupture: Rupture, patch_tt: np.ndarray) -> int:
        if self.duration_s is not None:
            return max(2, int(np.ceil(self.duration_s / self.dt_s)))
        t_end = rupture.duration_s + float(np.max(patch_tt)) + 60.0
        return max(2, int(np.ceil(t_end / self.dt_s)) + 1)

    def synthesize(
        self,
        rupture: Rupture,
        rng: np.random.Generator | None = None,
    ) -> WaveformSet:
        """Synthesize the waveform set for one rupture.

        Raises
        ------
        WaveformError
            If the rupture references subfaults outside the GF bank, or
            noise is configured but no ``rng`` is supplied.
        """
        patch = rupture.subfault_indices
        if patch.max() >= self.gf_bank.n_subfaults:
            raise WaveformError(
                f"rupture patch index {patch.max()} outside GF bank with "
                f"{self.gf_bank.n_subfaults} subfaults"
            )
        if self.noise is not None and rng is None:
            raise WaveformError("noise model configured but no rng supplied")

        gf = self.gf_bank.statics[:, patch, :]  # (nsta, npatch, 3) view
        tt = self.gf_bank.travel_time_s[:, patch]  # (nsta, npatch)
        nt = self._record_length(rupture, tt)

        if self.method == "fft":
            out = self._synthesize_fft(rupture, gf, tt, nt)
        else:
            times = self._times(nt)
            n_sta = self.gf_bank.n_stations
            out = np.empty((n_sta, 3, nt), dtype=self._work_dtype)
            slip, onset, rise = self._source_arrays(rupture)

            # Per-station vectorized accumulation; (npatch, nt)
            # intermediate keeps memory bounded for large meshes (see
            # DESIGN.md).
            for i in range(n_sta):
                arrival = onset + tt[i]  # (npatch,)
                x = (times[None, :] - arrival[:, None]) / rise[:, None]
                ramp = 0.5 * (1.0 - np.cos(np.pi * np.clip(x, 0.0, 1.0)))
                weighted = gf[i] * slip[:, None]  # (npatch, 3)
                out[i] = weighted.T @ ramp  # (3, nt)

        if self.noise is not None:
            out += self.noise.sample(rng, out.shape, self.dt_s)  # type: ignore[arg-type]

        return WaveformSet(
            rupture_id=rupture.rupture_id,
            data=out,
            dt_s=self.dt_s,
            station_names=self.gf_bank.station_names,
            metadata={"target_mw": rupture.target_mw},
        )

    def _synthesize_fft(
        self,
        rupture: Rupture,
        gf: np.ndarray,
        tt: np.ndarray,
        nt: int,
    ) -> np.ndarray:
        """FFT-domain synthesis core: delays applied as phase shifts.

        The ramp of a subfault arriving at ``a`` is a *step* (it never
        comes back down), so it cannot be circularly delayed directly.
        Decompose it instead: ``r(t - a) = 1 - c(t - a)`` where the
        complement pulse ``c = 1 - r`` is compactly supported on
        ``[0, rise]`` — and park a raised-cosine 0->1 transition in the
        zero-padded region past the record end so the circular signal
        wraps continuously. Then one ``rfft`` of the shared complement
        stack, per-station delay phases ``z^k`` built by repeated
        squaring (log2(F) complex-multiply passes instead of a
        transcendental per (patch, frequency)), a (3, npatch) x
        (npatch, F) matmul in the frequency domain, and one ``irfft``
        per station. Band-limited fractional-delay interpolation makes
        the result approximate at the ~1e-6 relative-PGD level.
        """
        n_sta = self.gf_bank.n_stations
        slip = rupture.slip_m.astype(float, copy=False)
        onset = rupture.onset_time_s.astype(float, copy=False)
        rise = np.maximum(rupture.rise_time_s, self.dt_s * 0.5).astype(
            float, copy=False
        )
        dt = self.dt_s

        arrivals = onset[None, :] + tt.astype(float, copy=False)  # (nsta, npatch)
        tau_max = float(arrivals.max()) / dt
        wrap = self._FFT_WRAP_SAMPLES
        b0 = nt
        n_min = int(np.ceil(b0 + wrap + tau_max)) + 2
        nfft = 1 << (n_min - 1).bit_length()
        n_freq = nfft // 2 + 1

        # Shared complement-pulse stack: 1 -> 0 over each patch's rise
        # time, flat 0, then the wrap transition back to 1 past the
        # record end (delays only push it further out, never into the
        # [0, nt) window the caller keeps).
        xx = (np.arange(nfft) * dt)[None, :] / rise[:, None]
        c0 = 1.0 - 0.5 * (1.0 - np.cos(np.pi * np.clip(xx, 0.0, 1.0)))
        c0[:, b0 : b0 + wrap] = (
            0.5 * (1.0 - np.cos(np.pi * np.arange(wrap) / wrap))
        )[None, :]
        c0[:, b0 + wrap :] = 1.0
        spec = np.fft.rfft(c0, axis=1)  # (npatch, n_freq)

        weighted = gf.astype(float, copy=False) * slip[None, :, None]
        static = weighted.sum(axis=1)  # (nsta, 3)
        alpha = (2.0 * np.pi / (nfft * dt)) * arrivals

        out = np.empty((n_sta, 3, nt), dtype=self._work_dtype)
        phases = np.empty((len(slip), n_freq), dtype=complex)
        for i in range(n_sta):
            # phases[:, k] = z^k with z = exp(-i alpha): doubling fills
            # [m, 2m) from [0, m) with one vectorized multiply per pass.
            z = np.exp(-1j * alpha[i])
            phases[:, 0] = 1.0
            z_m = z.copy()
            m = 1
            while m < n_freq:
                take = min(m, n_freq - m)
                np.multiply(
                    phases[:, :take], z_m[:, None], out=phases[:, m : m + take]
                )
                np.multiply(z_m, z_m, out=z_m)
                m *= 2
            hat = weighted[i].T @ (spec * phases)  # (3, n_freq)
            delayed = np.fft.irfft(hat, n=nfft, axis=1)[:, :nt]
            out[i] = static[i][:, None] - delayed
        return out

    def synthesize_many(
        self,
        ruptures: list[Rupture],
        rng: np.random.Generator | None = None,
    ) -> list[WaveformSet]:
        """Synthesize waveform sets for a chunk of ruptures (a C-phase job).

        Delegates to :meth:`synthesize_batch`, which produces bitwise
        the same products as calling :meth:`synthesize` in a loop.
        """
        return self.synthesize_batch(ruptures, rngs=rng)

    def synthesize_batch(
        self,
        ruptures: list[Rupture],
        rngs: list[np.random.Generator | None]
        | np.random.Generator
        | None = None,
    ) -> list[WaveformSet]:
        """Batched Phase-C kernel: one call synthesizes a whole chunk.

        All ruptures' patches are concatenated along one axis so the
        expensive slip-ramp evaluation runs as stacked array kernels
        over the whole chunk instead of a Python loop per rupture —
        per-station cost drops from ``n_ruptures`` small vector-op
        rounds to one. Products are **bit-identical** to calling
        :meth:`synthesize` per rupture (the per-rupture matmul operands
        are reconstructed with the exact values and memory layout of
        the scalar path).

        Parameters
        ----------
        rngs:
            ``None`` (clean synthetics), one shared generator (noise
            drawn per rupture in catalog order, matching a
            :meth:`synthesize` loop), or one generator per rupture
            (the chunk-job mode where each rupture owns a keyed noise
            stream).
        """
        if not ruptures:
            return []
        if isinstance(rngs, np.random.Generator) or rngs is None:
            rng_list: list[np.random.Generator | None] = [rngs] * len(ruptures)
        else:
            rng_list = list(rngs)
            if len(rng_list) != len(ruptures):
                raise WaveformError(
                    f"got {len(rng_list)} rngs for {len(ruptures)} ruptures"
                )

        bank = self.gf_bank
        for rupture in ruptures:
            if rupture.subfault_indices.max() >= bank.n_subfaults:
                raise WaveformError(
                    f"rupture patch index {rupture.subfault_indices.max()} "
                    f"outside GF bank with {bank.n_subfaults} subfaults"
                )
        if self.noise is not None and any(r is None for r in rng_list):
            raise WaveformError("noise model configured but no rng supplied")

        if self.method == "fft":
            # The FFT core is already a whole-network batch per rupture;
            # chunking adds nothing, so just run it per rupture (same
            # products as a :meth:`synthesize` loop).
            outs = []
            for rupture in ruptures:
                patch = rupture.subfault_indices
                gf = bank.statics[:, patch, :]
                tt = bank.travel_time_s[:, patch]
                outs.append(
                    self._synthesize_fft(
                        rupture, gf, tt, self._record_length(rupture, tt)
                    )
                )
            return self._assemble(ruptures, outs, rng_list)

        # Concatenate every rupture's patch into one axis; `segments`
        # holds each rupture's [start, end) slice of that axis.
        counts = [r.n_subfaults for r in ruptures]
        offsets = np.concatenate([[0], np.cumsum(counts)])
        segments = [
            (int(offsets[k]), int(offsets[k + 1])) for k in range(len(ruptures))
        ]
        patch_all = np.concatenate([r.subfault_indices for r in ruptures])
        work = self._work_dtype
        sources = [self._source_arrays(r) for r in ruptures]
        slip_all = np.concatenate([s for s, _, _ in sources])
        onsets = [o for _, o, _ in sources]
        rises = [r for _, _, r in sources]

        gf_all = bank.statics[:, patch_all, :]  # (nsta, sum_npatch, 3)
        tt_all = bank.travel_time_s[:, patch_all]  # (nsta, sum_npatch)
        nts = [
            self._record_length(rupture, tt_all[:, s:e])
            for rupture, (s, e) in zip(ruptures, segments)
        ]
        times = self._times(max(nts))

        # Records are ragged (each rupture sizes its own nt), so the
        # chunk's (patch x time) planes are packed back-to-back into one
        # flat buffer: no padding, and each rupture's plane is a
        # C-contiguous (npatch, nt) view — the exact matmul operand the
        # scalar path builds, which is what keeps products bit-identical.
        plane_sizes = [c * nt for c, nt in zip(counts, nts)]
        plane_offsets = np.concatenate([[0], np.cumsum(plane_sizes)])
        buf = np.empty(int(plane_offsets[-1]), dtype=work)
        planes = [
            buf[int(plane_offsets[k]) : int(plane_offsets[k + 1])].reshape(
                counts[k], nts[k]
            )
            for k in range(len(ruptures))
        ]

        # The ramp transform t(x) = 0.5*(1 - cos(pi*x)) fixes the
        # clipped plateaus exactly (cos(0) == 1 and cos(pi) == -1 in
        # IEEE arithmetic — checked in the *working* dtype, since a
        # float32 bank runs the whole chain in float32), so after
        # clipping only the narrow rise band 0 < x < 1 — typically a few
        # percent of the plane — needs the transcendental evaluation.
        # Guard the fixed points anyway so an exotic libm falls back to
        # transforming everything.
        w_ = work.type
        plateaus_exact = (
            w_(0.5) * (w_(1.0) - np.cos(w_(np.pi) * w_(0.0))) == w_(0.0)
            and w_(0.5) * (w_(1.0) - np.cos(w_(np.pi) * w_(1.0))) == w_(1.0)
        )

        n_sta = bank.n_stations
        outs = [np.empty((n_sta, 3, nt), dtype=work) for nt in nts]
        for i in range(n_sta):
            for k, (s, e) in enumerate(segments):
                arrival = onsets[k] + tt_all[i, s:e]  # (npatch,)
                np.subtract(times[None, : nts[k]], arrival[:, None], out=planes[k])
                planes[k] /= rises[k][:, None]
            # The ramp passes run once over the whole chunk — stacked
            # kernels instead of a Python loop of per-rupture rounds —
            # and the cos chain touches only the unsaturated band.
            np.clip(buf, 0.0, 1.0, out=buf)
            if plateaus_exact:
                band = np.flatnonzero((buf > 0.0) & (buf < 1.0))
                vals = buf[band]
            else:  # pragma: no cover - non-IEEE libm fallback
                band = slice(None)
                vals = buf.copy()
            np.multiply(np.pi, vals, out=vals)
            np.cos(vals, out=vals)
            np.subtract(1.0, vals, out=vals)
            np.multiply(0.5, vals, out=vals)
            buf[band] = vals
            weighted_all = gf_all[i] * slip_all[:, None]
            for k, (s, e) in enumerate(segments):
                outs[k][i] = weighted_all[s:e].T @ planes[k]

        return self._assemble(ruptures, outs, rng_list)

    def _assemble(
        self,
        ruptures: list[Rupture],
        outs: list[np.ndarray],
        rng_list: list[np.random.Generator | None],
    ) -> list[WaveformSet]:
        """Add per-rupture noise and wrap the raw arrays as WaveformSets.

        The noise draw is float64; casting the sum back to the working
        dtype reproduces the scalar path's in-place ``+=`` (which rounds
        each float64 sum into the float32 output buffer).
        """
        work = self._work_dtype
        sets: list[WaveformSet] = []
        for k, rupture in enumerate(ruptures):
            out = outs[k]
            if self.noise is not None:
                out = out + self.noise.sample(rng_list[k], out.shape, self.dt_s)  # type: ignore[arg-type]
                if out.dtype != work:
                    out = out.astype(work)
            sets.append(
                WaveformSet(
                    rupture_id=rupture.rupture_id,
                    data=out,
                    dt_s=self.dt_s,
                    station_names=self.gf_bank.station_names,
                    metadata={"target_mw": rupture.target_mw},
                )
            )
        return sets
