"""MudPy/FakeQuakes-equivalent seismic simulation substrate.

This subpackage is a from-scratch, self-contained reimplementation of the
parts of MudPy's *FakeQuakes* module that the FDW workflow depends on:

* synthetic subduction-zone fault geometries (:mod:`repro.seismo.geometry`),
* GNSS station networks (:mod:`repro.seismo.stations`),
* the two recyclable inter-subfault **distance matrices**
  (:mod:`repro.seismo.distance`) that FakeQuakes stores as ``.npy`` files,
* semistochastic **rupture scenario generation** with von Kármán
  correlated slip (:mod:`repro.seismo.ruptures`),
* elastic half-space **Green's functions** (:mod:`repro.seismo.greens`),
* GNSS displacement **waveform synthesis** (:mod:`repro.seismo.waveforms`),
* MudPy-style file formats (:mod:`repro.seismo.mudpy_io`), and
* an end-to-end facade (:class:`repro.seismo.fakequakes.FakeQuakes`).

The physics is intentionally simplified relative to the real MudPy (see
DESIGN.md §2) but every stage performs real numerical work with the same
data flow and the same cost *shape* (distance matrices are expensive and
recyclable; Green's functions scale with the station count; waveform
synthesis scales with stations × ruptures), which is what the workflow
experiments in the paper exercise.
"""

from repro.seismo.distance import DistanceMatrices
from repro.seismo.fakequakes import FakeQuakes, FakeQuakesParameters
from repro.seismo.geometry import FaultGeometry, build_cascadia_slab, build_chile_slab
from repro.seismo.greens import GreensFunctionBank, compute_gf_bank
from repro.seismo.klcache import KLCache, kl_basis_key
from repro.seismo.okada import compute_okada_gf_bank, okada85
from repro.seismo.ruptures import Rupture, RuptureGenerator
from repro.seismo.stations import Station, StationNetwork, chilean_network
from repro.seismo.waveforms import WaveformSet, WaveformSynthesizer

__all__ = [
    "DistanceMatrices",
    "FakeQuakes",
    "FakeQuakesParameters",
    "FaultGeometry",
    "build_cascadia_slab",
    "build_chile_slab",
    "GreensFunctionBank",
    "compute_gf_bank",
    "compute_okada_gf_bank",
    "okada85",
    "KLCache",
    "kl_basis_key",
    "Rupture",
    "RuptureGenerator",
    "Station",
    "StationNetwork",
    "chilean_network",
    "WaveformSet",
    "WaveformSynthesizer",
]
