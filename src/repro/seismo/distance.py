"""The two recyclable inter-subfault distance matrices.

FakeQuakes decomposes the distance between every pair of subfaults into
an **along-strike** component and a **down-dip** component, stored as two
``.npy`` files. Building them is O(n_subfaults^2) and they depend only on
the fault geometry, so they are computed once and *recycled* across every
rupture realization — in the FDW this is exactly the bootstrap job at the
head of Phase A ("if no .npy files are provided, a single job will create
the matrices, which parallel jobs will then use").

The anisotropic pair (Dstrike, Ddip) is what the von Kármán slip
correlation consumes, because correlation lengths differ along strike
and down dip.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path

import numpy as np

from repro.errors import GeometryError
from repro.seismo.geometry import FaultGeometry

__all__ = ["DistanceMatrices"]


@dataclass(frozen=True)
class DistanceMatrices:
    """Pair of (n, n) inter-subfault distance matrices in km.

    Attributes
    ----------
    along_strike:
        ``D_strike[i, j]``: separation of subfaults i and j measured
        along the strike direction.
    down_dip:
        ``D_dip[i, j]``: separation measured along the down-dip
        direction (distance *on* the curved interface, i.e. accumulated
        mesh spacing, not the chord).
    """

    along_strike: np.ndarray
    down_dip: np.ndarray

    def __post_init__(self) -> None:
        a, d = self.along_strike, self.down_dip
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise GeometryError(f"along_strike must be square, got {a.shape}")
        if d.shape != a.shape:
            raise GeometryError(f"matrix shapes differ: {a.shape} vs {d.shape}")
        if not (np.all(np.isfinite(a)) and np.all(np.isfinite(d))):
            raise GeometryError("distance matrices contain non-finite values")
        if np.any(a < 0) or np.any(d < 0):
            raise GeometryError("distances must be non-negative")

    @property
    def n_subfaults(self) -> int:
        """Number of subfaults the matrices were built for."""
        return self.along_strike.shape[0]

    def total(self) -> np.ndarray:
        """Euclidean combination sqrt(Dstrike^2 + Ddip^2)."""
        return np.hypot(self.along_strike, self.down_dip)

    @cached_property
    def content_digest(self) -> str:
        """sha256 over both matrices' bytes (computed once per instance).

        This is the geometry component of the K-L basis cache key
        (:func:`repro.seismo.klcache.kl_basis_key`): two meshes whose
        recycled ``.npy`` pairs are byte-equal share K-L cache entries,
        any geometry change invalidates them.
        """
        h = hashlib.sha256()
        h.update(b"distances-v1\x1f")
        h.update(np.int64([self.n_subfaults]).tobytes())
        h.update(np.ascontiguousarray(self.along_strike, dtype=np.float64).tobytes())
        h.update(np.ascontiguousarray(self.down_dip, dtype=np.float64).tobytes())
        return h.hexdigest()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_geometry(cls, geometry: FaultGeometry) -> "DistanceMatrices":
        """Compute both matrices from a fault mesh.

        Along-strike separation uses the north coordinate difference of
        the local frame (the synthetic slab strikes north); down-dip
        separation accumulates the on-interface mesh spacing between
        down-dip rows, which handles the dip steepening correctly.
        """
        _, north, _ = geometry.enu()  # strike separation is along-strike only
        n = geometry.n_subfaults

        # Along-strike: |north_i - north_j| (vectorized outer difference).
        d_strike = np.abs(north[:, None] - north[None, :])

        # Down-dip: on-interface arc length between dip rows. For each
        # subfault its dip-row index determines cumulative on-fault
        # distance from the trench; width_km is the per-row arc step.
        dip_idx = np.asarray(geometry.dip_index(np.arange(n)))
        width_by_row = geometry.width_km[: geometry.n_dip]
        arc_edges = np.concatenate([[0.0], np.cumsum(width_by_row)])
        arc_mid = 0.5 * (arc_edges[:-1] + arc_edges[1:])
        arc = arc_mid[dip_idx]
        d_dip = np.abs(arc[:, None] - arc[None, :])

        # __post_init__ validates shapes, symmetry and non-negativity.
        return cls(along_strike=d_strike, down_dip=d_dip)

    # -- the recyclable .npy pair --------------------------------------------

    def save(self, directory: str | Path, prefix: str = "distances") -> tuple[Path, Path]:
        """Write ``<prefix>_strike.npy`` and ``<prefix>_dip.npy``.

        These are the artifacts the FDW Phase-A bootstrap job produces
        and Stash Cache distributes.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        p_strike = directory / f"{prefix}_strike.npy"
        p_dip = directory / f"{prefix}_dip.npy"
        np.save(p_strike, self.along_strike)
        np.save(p_dip, self.down_dip)
        return p_strike, p_dip

    @classmethod
    def load(cls, directory: str | Path, prefix: str = "distances") -> "DistanceMatrices":
        """Read the ``.npy`` pair written by :meth:`save`."""
        directory = Path(directory)
        p_strike = directory / f"{prefix}_strike.npy"
        p_dip = directory / f"{prefix}_dip.npy"
        if not p_strike.exists() or not p_dip.exists():
            raise GeometryError(
                f"distance matrices not found under {directory} (prefix {prefix!r})"
            )
        return cls(
            along_strike=np.load(p_strike),
            down_dip=np.load(p_dip),
        )

    @staticmethod
    def exists(directory: str | Path, prefix: str = "distances") -> bool:
        """True when both ``.npy`` files are present (recycling check)."""
        directory = Path(directory)
        return (directory / f"{prefix}_strike.npy").exists() and (
            directory / f"{prefix}_dip.npy"
        ).exists()
