"""Elastic Green's functions for static GNSS displacement.

MudPy computes station Green's functions with a frequency-wavenumber
code (fk) against a layered Earth model — a heavy external dependency.
We replace it with an analytic model that keeps the properties the
workflow and validation care about:

* 3-component static displacement per (station, subfault) pair,
* correct 1/R^2 geometric decay of the static field,
* the standard double-couple radiation pattern (strike/dip/rake and
  azimuth/takeoff dependence, Aki & Richards eqs. 4.84-4.86),
* a free-surface amplification factor of 2, and
* per-pair S-wave travel times used to lag subfault contributions in
  the kinematic synthesis.

Computing a bank is O(n_stations * n_subfaults) with real vector math,
so its cost scales with the station-list length exactly as the paper's
Phase B does ("can span multiple hours depending on the length of a
required input list of GNSS stations").
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import GreensFunctionError
from repro.seismo.geometry import FaultGeometry
from repro.seismo.kinematics import DEFAULT_SHEAR_VELOCITY_KMS
from repro.seismo.stations import StationNetwork

__all__ = ["GreensFunctionBank", "compute_gf_bank", "radiation_patterns"]

#: Default rake: pure thrust, the megathrust mechanism.
DEFAULT_RAKE_DEG = 90.0


def radiation_patterns(
    strike_deg: np.ndarray,
    dip_deg: np.ndarray,
    rake_deg: np.ndarray | float,
    azimuth_deg: np.ndarray,
    takeoff_deg: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Double-couple radiation pattern coefficients (F_P, F_SV, F_SH).

    Standard far-field expressions (Aki & Richards, Quantitative
    Seismology, eqs. 4.84-4.86). All angles in degrees; inputs broadcast.

    ``azimuth`` is measured from strike (phi = station azimuth - strike);
    ``takeoff`` is the angle of the source-receiver ray from vertical.
    """
    lam = np.radians(np.asarray(rake_deg, dtype=float))
    dlt = np.radians(np.asarray(dip_deg, dtype=float))
    phi = np.radians(np.asarray(azimuth_deg, dtype=float) - np.asarray(strike_deg, dtype=float))
    inc = np.radians(np.asarray(takeoff_deg, dtype=float))

    sin_i, cos_i = np.sin(inc), np.cos(inc)
    sin_2i = np.sin(2.0 * inc)
    cos_2i = np.cos(2.0 * inc)

    f_p = (
        np.cos(lam) * np.sin(dlt) * sin_i**2 * np.sin(2.0 * phi)
        - np.cos(lam) * np.cos(dlt) * sin_2i * np.cos(phi)
        + np.sin(lam) * np.sin(2.0 * dlt) * (cos_i**2 - sin_i**2 * np.sin(phi) ** 2)
        + np.sin(lam) * np.cos(2.0 * dlt) * sin_2i * np.sin(phi)
    )
    f_sv = (
        np.sin(lam) * np.cos(2.0 * dlt) * cos_2i * np.sin(phi)
        - np.cos(lam) * np.cos(dlt) * cos_2i * np.cos(phi)
        + 0.5 * np.cos(lam) * np.sin(dlt) * sin_2i * np.sin(2.0 * phi)
        - 0.5 * np.sin(lam) * np.sin(2.0 * dlt) * sin_2i * (1.0 + np.sin(phi) ** 2)
    )
    f_sh = (
        np.cos(lam) * np.cos(dlt) * cos_i * np.sin(phi)
        + np.cos(lam) * np.sin(dlt) * sin_i * np.cos(2.0 * phi)
        + np.sin(lam) * np.cos(2.0 * dlt) * cos_i * np.cos(phi)
        - 0.5 * np.sin(lam) * np.sin(2.0 * dlt) * sin_i * np.sin(2.0 * phi)
    )
    return f_p, f_sv, f_sh


@dataclass(frozen=True)
class GreensFunctionBank:
    """Precomputed static GFs and travel times for a network/fault pair.

    Attributes
    ----------
    statics:
        (n_stations, n_subfaults, 3) static displacement in metres at
        each station for **1 m of slip** on each subfault, components
        ordered (east, north, up).
    travel_time_s:
        (n_stations, n_subfaults) S-wave travel time in seconds.
    station_names:
        Network order matching axis 0.
    fault_name:
        Name of the geometry the bank was computed for.
    """

    statics: np.ndarray
    travel_time_s: np.ndarray
    station_names: tuple[str, ...]
    fault_name: str

    def __post_init__(self) -> None:
        s = self.statics
        t = self.travel_time_s
        if s.ndim != 3 or s.shape[2] != 3:
            raise GreensFunctionError(f"statics must be (nsta, nsub, 3), got {s.shape}")
        if t.shape != s.shape[:2]:
            raise GreensFunctionError(
                f"travel_time shape {t.shape} != statics leading dims {s.shape[:2]}"
            )
        if len(self.station_names) != s.shape[0]:
            raise GreensFunctionError("station_names length != statics stations axis")
        if not np.all(np.isfinite(s)) or not np.all(np.isfinite(t)):
            raise GreensFunctionError("GF bank contains non-finite values")
        if np.any(t < 0):
            raise GreensFunctionError("travel times must be non-negative")

    @property
    def n_stations(self) -> int:
        """Number of stations (axis 0)."""
        return self.statics.shape[0]

    @property
    def n_subfaults(self) -> int:
        """Number of subfaults (axis 1)."""
        return self.statics.shape[1]

    @property
    def nbytes(self) -> int:
        """Physical size of the bank arrays in bytes.

        What storage layers (:mod:`repro.core.gfcache` shared-memory
        publishing, :mod:`repro.vdc.storage` placement) charge for.
        Dtype-aware: a float32 bank reports half the bytes of its
        float64 twin.
        """
        return int(self.statics.nbytes) + int(self.travel_time_s.nbytes)

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the bank arrays (float64 unless opted in)."""
        return self.statics.dtype

    def astype(self, dtype: str | np.dtype) -> "GreensFunctionBank":
        """Return a copy of the bank cast to ``dtype``.

        ``float32`` halves :attr:`nbytes` (and therefore Stash/OSDF
        transfer bytes in the VDC model) at the cost of ~1e-7 relative
        error in synthesized waveforms — see DESIGN.md for the measured
        budget. A no-op cast still returns a new bank.
        """
        out = np.dtype(dtype)
        if out not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise GreensFunctionError(
                f"GF bank dtype must be float64 or float32, got {out}"
            )
        return GreensFunctionBank(
            statics=self.statics.astype(out),
            travel_time_s=self.travel_time_s.astype(out),
            station_names=self.station_names,
            fault_name=self.fault_name,
        )

    def station_index(self, name: str) -> int:
        """Index of a station by code."""
        try:
            return self.station_names.index(name)
        except ValueError:
            raise GreensFunctionError(f"station {name!r} not in GF bank") from None

    # -- persistence (the .mseed-archive stand-in) --------------------------

    def save(self, path: str | Path) -> Path:
        """Write the bank to a compressed ``.npz`` archive.

        This plays the role of the large ``.mseed`` archives Phase B
        produces (possibly exceeding 1 GB in the paper's runs).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            statics=self.statics,
            travel_time_s=self.travel_time_s,
            station_names=np.array(self.station_names),
            fault_name=np.array(self.fault_name),
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "GreensFunctionBank":
        """Read a bank written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise GreensFunctionError(f"GF bank not found: {path}")
        with np.load(path, allow_pickle=False) as data:
            return cls(
                statics=data["statics"],
                travel_time_s=data["travel_time_s"],
                station_names=tuple(str(n) for n in data["station_names"]),
                fault_name=str(data["fault_name"]),
            )


def compute_gf_bank(
    geometry: FaultGeometry,
    network: StationNetwork,
    rake_deg: float = DEFAULT_RAKE_DEG,
    shear_velocity_kms: float = DEFAULT_SHEAR_VELOCITY_KMS,
    min_distance_km: float = 1.0,
    dtype: str | np.dtype = "float64",
) -> GreensFunctionBank:
    """Compute the static GF bank for every (station, subfault) pair.

    The static field for unit slip on a subfault of area ``A`` is::

        u = 2 * (mu * A * 1 / (4 pi mu R^2)) * (F_P * rhat + F_SV * vhat + F_SH * hhat)

    i.e. moment ``mu*A*u_slip`` with ``u_slip = 1 m``, double-couple
    radiation pattern, 1/R^2 static decay, and free-surface factor 2.
    The rigidity cancels in the displacement amplitude, leaving the
    area/geometry dependence — which is the behaviour the validation
    checks (amplitude grows with moment, decays with distance).

    Parameters
    ----------
    min_distance_km:
        Distances are floored at this value to keep the near-field
        amplitude finite for stations nearly atop a subfault.
    dtype:
        Output dtype of the bank arrays; the computation itself always
        runs in float64 and ``"float32"`` casts the finished bank.
    """
    if min_distance_km <= 0:
        raise GreensFunctionError(f"min_distance_km must be positive, got {min_distance_km}")
    if shear_velocity_kms <= 0:
        raise GreensFunctionError("shear velocity must be positive")

    east_f, north_f, depth_f = geometry.enu()
    east_s, north_s = geometry.projection.to_enu(network.lons, network.lats)

    # Pairwise source->receiver vectors in km; receivers at the surface.
    dx = east_s[:, None] - east_f[None, :]  # east
    dy = north_s[:, None] - north_f[None, :]  # north
    dz = 0.0 - (-depth_f[None, :])  # up (source depth is positive-down)
    dz = np.broadcast_to(dz, dx.shape).copy()

    r = np.sqrt(dx**2 + dy**2 + dz**2)
    r = np.maximum(r, min_distance_km)

    # Unit ray vector components.
    gx, gy, gz = dx / r, dy / r, dz / r

    # Azimuth of the ray (degrees from north, clockwise) and takeoff
    # angle from vertical.
    azimuth = np.degrees(np.arctan2(gx, gy))
    takeoff = np.degrees(np.arccos(np.clip(gz, -1.0, 1.0)))

    f_p, f_sv, f_sh = radiation_patterns(
        geometry.strike_deg[None, :],
        geometry.dip_deg[None, :],
        rake_deg,
        azimuth,
        takeoff,
    )

    # Basis vectors: rhat along the ray; hhat horizontal transverse;
    # vhat completes the right-handed set (SV polarization).
    horiz = np.maximum(np.sqrt(gx**2 + gy**2), 1e-12)
    hx, hy, hz = gy / horiz, -gx / horiz, np.zeros_like(gx)
    # vhat = rhat x hhat
    vx = gy * hz - gz * hy
    vy = gz * hx - gx * hz
    vz = gx * hy - gy * hx

    # Amplitude: potency (A * 1m) / (4 pi R^2), R in metres, A in m^2.
    area_m2 = geometry.area_km2[None, :] * 1e6
    r_m = r * 1e3
    amp = 2.0 * area_m2 / (4.0 * np.pi * r_m**2)

    ue = amp * (f_p * gx + f_sv * vx + f_sh * hx)
    un = amp * (f_p * gy + f_sv * vy + f_sh * hy)
    uz = amp * (f_p * gz + f_sv * vz + f_sh * hz)

    statics = np.stack([ue, un, uz], axis=-1)
    travel = r / shear_velocity_kms

    bank = GreensFunctionBank(
        statics=statics,
        travel_time_s=travel,
        station_names=tuple(network.names),
        fault_name=geometry.name,
    )
    if np.dtype(dtype) != np.dtype(np.float64):
        bank = bank.astype(dtype)
    return bank
