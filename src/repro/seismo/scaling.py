"""Earthquake source scaling laws.

FakeQuakes draws rupture dimensions and target slip from published
magnitude scaling relations. We implement the standard set:

* moment/magnitude conversion (Hanks & Kanamori 1979),
* subduction-interface rupture length/width scaling in the spirit of
  Blaser et al. (2010) / Allen & Hayes (2017) — log-linear in Mw with
  lognormal scatter,
* mean slip from moment closure ``M0 = mu * A * D``.

These are the quantities the rupture generator needs; coefficients are
the published central values (the exact regression constants matter less
here than their shape — see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RuptureError

__all__ = [
    "moment_from_magnitude",
    "magnitude_from_moment",
    "ScalingLaw",
    "SUBDUCTION_INTERFACE",
]


def moment_from_magnitude(mw: np.ndarray | float) -> np.ndarray | float:
    """Seismic moment M0 (N m) from moment magnitude Mw."""
    return 10.0 ** (1.5 * np.asarray(mw, dtype=float) + 9.1)


def magnitude_from_moment(m0: np.ndarray | float) -> np.ndarray | float:
    """Moment magnitude Mw from seismic moment M0 (N m)."""
    m0 = np.asarray(m0, dtype=float)
    if np.any(m0 <= 0):
        raise RuptureError("seismic moment must be positive")
    return (np.log10(m0) - 9.1) / 1.5


@dataclass(frozen=True)
class ScalingLaw:
    """Log-linear rupture-dimension scaling with lognormal scatter.

    ``log10 L = a_l + b_l * Mw`` (L in km), likewise for width W, with
    standard deviations ``s_l`` / ``s_w`` in log10 units. Width scatter
    is applied with the same random deviate sign as length scatter at
    half amplitude, reflecting the observed L-W correlation.
    """

    a_length: float
    b_length: float
    s_length: float
    a_width: float
    b_width: float
    s_width: float
    name: str = "generic"

    def median_length_km(self, mw: float) -> float:
        """Median rupture length in km for a given Mw."""
        return float(10.0 ** (self.a_length + self.b_length * mw))

    def median_width_km(self, mw: float) -> float:
        """Median rupture width in km for a given Mw."""
        return float(10.0 ** (self.a_width + self.b_width * mw))

    def sample_dimensions(
        self, mw: float, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Draw (length_km, width_km) for a target magnitude."""
        if not (5.0 <= mw <= 9.7):
            raise RuptureError(f"target magnitude {mw} outside supported range 5.0-9.7")
        z = rng.normal()
        length = 10.0 ** (self.a_length + self.b_length * mw + self.s_length * z)
        width = 10.0 ** (self.a_width + self.b_width * mw + 0.5 * self.s_width * z)
        return float(length), float(width)

    def mean_slip_m(self, mw: float, area_km2: float, rigidity_pa: float) -> float:
        """Mean slip (m) that closes the moment for a rupture area.

        ``D = M0 / (mu * A)`` with A converted from km^2 to m^2.
        """
        if area_km2 <= 0:
            raise RuptureError(f"rupture area must be positive, got {area_km2}")
        if rigidity_pa <= 0:
            raise RuptureError(f"rigidity must be positive, got {rigidity_pa}")
        m0 = moment_from_magnitude(mw)
        return float(m0 / (rigidity_pa * area_km2 * 1e6))


#: Blaser et al. (2010)-style subduction interface coefficients.
SUBDUCTION_INTERFACE = ScalingLaw(
    a_length=-2.37,
    b_length=0.57,
    s_length=0.18,
    a_width=-1.86,
    b_width=0.46,
    s_width=0.17,
    name="subduction_interface",
)
