"""Karhunen-Loève basis cache: recycling the Phase-A eigendecomposition.

The paper's Phase-A story is built on recycling: the distance-matrix
``.npy`` pair is computed by one bootstrap job and reused by every
parallel rupture job ("recycling them is crucial"). But the *per-rupture*
kernel still pays an O(p^2) von Kármán correlation build plus an O(p^3)
eigendecomposition for each rupture patch, and those depend only on a
small set of inputs — the patch window, the correlation lengths, the
Hurst exponent and the K-L truncation. Two ruptures with the same inputs
redo identical linear algebra; a re-run of the same deterministic catalog
redoes all of it.

This module gives Phase A the same lever :mod:`repro.core.gfcache` gives
Phase B:

* a **content-addressed key** (:func:`kl_basis_key`) over exactly the
  inputs that determine a basis — the distance matrices' content digest,
  the patch indices (window shape *and* position), both correlation
  lengths, the Hurst exponent and the mode count;
* a two-level :class:`KLCache` — in-memory LRU over
  :class:`~repro.seismo.spectra.KarhunenLoeveBasis` objects backed by an
  optional on-disk ``.npz`` store (point ``REPRO_KL_CACHE_DIR`` at a
  shared directory to reuse bases across processes and runs);
* an **opt-in quantized-correlation-length mode** for catalog sweeps:
  rounding the continuous scaling-law lengths onto a grid makes nearby
  ruptures share cache entries at the cost of slightly different
  numerics. It is **off by default** precisely because it changes the
  sampled slip fields; the exact mode is bit-identical to the uncached
  path.

Exact-mode guarantee: a cold ``get_or_compute`` runs the very same
kernel calls the uncached path runs, and both the memory and the
``.npz`` level round-trip float64 losslessly — so warm hits reproduce
cold-path ruptures bit-for-bit.
"""

from __future__ import annotations

import hashlib
import io
import os
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import CacheError, IntegrityError, ReproError
from repro.integrity import (
    quarantine_artifact,
    read_verified,
    sha256_bytes,
    write_digest,
)
from repro.seismo.distance import DistanceMatrices
from repro.seismo.spectra import KarhunenLoeveBasis, von_karman_correlation

__all__ = ["kl_basis_key", "KLCacheStats", "KLCache"]

#: Environment variable naming a default on-disk store directory.
CACHE_DIR_ENV = "REPRO_KL_CACHE_DIR"


def kl_basis_key(
    distances: DistanceMatrices,
    patch: np.ndarray,
    corr_len_strike_km: float,
    corr_len_dip_km: float,
    hurst: float = 0.75,
    n_modes: int | None = None,
) -> str:
    """Content-addressed cache key of a patch K-L basis.

    The key hashes every input that flows into the correlation build and
    eigendecomposition: the distance matrices' content digest, the patch
    indices (which encode the window's shape and position on the mesh),
    the two correlation lengths, the Hurst exponent and the truncation.
    Any change to any of them yields a different key — the
    cache-invalidation rule, same as :func:`repro.core.gfcache.gf_bank_key`.
    """
    idx = np.ascontiguousarray(np.asarray(patch, dtype=np.int64))
    h = hashlib.sha256()
    h.update(b"klbasis-v1\x1f")
    h.update(distances.content_digest.encode("ascii") + b"\x1f")
    h.update(np.int64([idx.size]).tobytes())
    h.update(idx.tobytes())
    h.update(np.float64([corr_len_strike_km, corr_len_dip_km, hurst]).tobytes())
    h.update(str(n_modes).encode("ascii"))
    return h.hexdigest()


@dataclass
class KLCacheStats:
    """Hit/miss counters of one :class:`KLCache` (mutable, cumulative)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Disk entries that failed digest verification or parsing and were
    #: quarantined (each such lookup also counts as a miss).
    integrity_failures: int = 0

    @property
    def hits(self) -> int:
        """All hits, either level."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses


def _observe_kl_lookup(outcome: str, basis) -> None:
    """Emit one K-L lookup into the obs registry (no-op when disabled)."""
    if not obs.enabled():
        return
    obs.counter_add(
        "repro_cache_lookups_total", 1, {"cache": "kl", "outcome": outcome}
    )
    if basis is not None:
        obs.counter_add(
            "repro_cache_bytes_total",
            basis.eigenvalues.nbytes + basis.eigenvectors.nbytes,
            {"cache": "kl", "event": "hit"},
        )


class KLCache:
    """Two-level (memory LRU + disk ``.npz``) K-L basis cache.

    Parameters
    ----------
    cache_dir:
        Directory of the on-disk store. ``None`` reads the
        ``REPRO_KL_CACHE_DIR`` environment variable; when that is unset
        too, the cache is memory-only (still amortizes within a
        process).
    max_memory_entries:
        LRU capacity. Bases evicted from memory survive on disk when a
        ``cache_dir`` is configured. Patch bases are far smaller than GF
        banks (p x k floats), so the default is generous.
    quantize_step_km:
        ``None`` (default) keys on the exact correlation lengths — the
        bit-identical mode. A positive value switches on the
        **numerics-changing** quantized mode: both correlation lengths
        are rounded to the nearest multiple of the step *before* the
        correlation is built, so ruptures with nearby scaling-law draws
        share one basis. Use only for high-hit-rate catalog sweeps where
        slip-field perturbations at the quantization scale are
        acceptable.
    verify_digests:
        Verify each disk entry's sha256 sidecar on load (default); a
        failed check or unparseable entry is quarantined into
        ``cache_dir/quarantine/`` and treated as a miss, same contract
        as :class:`repro.core.gfcache.GFCache`.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        max_memory_entries: int = 128,
        quantize_step_km: float | None = None,
        verify_digests: bool = True,
    ) -> None:
        if max_memory_entries < 1:
            raise CacheError(
                f"max_memory_entries must be >= 1, got {max_memory_entries}"
            )
        if quantize_step_km is not None and quantize_step_km <= 0:
            raise CacheError(
                f"quantize_step_km must be positive, got {quantize_step_km}"
            )
        if cache_dir is None:
            env = os.environ.get(CACHE_DIR_ENV, "").strip()
            cache_dir = env or None
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_memory_entries = int(max_memory_entries)
        self.quantize_step_km = (
            float(quantize_step_km) if quantize_step_km is not None else None
        )
        self.verify_digests = bool(verify_digests)
        self._memory: OrderedDict[str, KarhunenLoeveBasis] = OrderedDict()
        self.stats = KLCacheStats()
        #: Paths of quarantined artifacts, in quarantine order.
        self.quarantined: list[Path] = []

    # -- quantized mode -------------------------------------------------------

    def effective_lengths(
        self, corr_len_strike_km: float, corr_len_dip_km: float
    ) -> tuple[float, float]:
        """The correlation lengths actually used (and keyed).

        Exact mode returns the inputs unchanged; quantized mode snaps
        both onto the configured grid (never below one step, to keep
        them positive).
        """
        step = self.quantize_step_km
        if step is None:
            return float(corr_len_strike_km), float(corr_len_dip_km)
        return (
            max(step, round(corr_len_strike_km / step) * step),
            max(step, round(corr_len_dip_km / step) * step),
        )

    # -- paths ---------------------------------------------------------------

    def disk_path(self, key: str) -> Path | None:
        """On-disk location of a key, or ``None`` for memory-only caches."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"kl_{key}.npz"

    # -- primitive get/put ---------------------------------------------------

    def get(self, key: str) -> KarhunenLoeveBasis | None:
        """Look a key up (memory first, then disk); ``None`` on miss.

        A disk entry that fails its digest check or cannot be parsed is
        quarantined and reported as a miss — corruption degrades to a
        re-eigendecomposition, never a wrong basis or a raw
        ``zipfile.BadZipFile``.
        """
        basis = self._memory.get(key)
        if basis is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            _observe_kl_lookup("memory_hit", basis)
            return basis
        path = self.disk_path(key)
        if path is not None and path.exists():
            try:
                basis = self._load_disk(path)
            except IntegrityError as exc:
                self.stats.integrity_failures += 1
                obs.counter_add(
                    "repro_cache_integrity_failures_total", 1, {"cache": "kl"}
                )
                self.quarantined.append(
                    quarantine_artifact(path, reason=str(exc))
                )
            else:
                self._remember(key, basis)
                self.stats.disk_hits += 1
                _observe_kl_lookup("disk_hit", basis)
                return basis
        self.stats.misses += 1
        _observe_kl_lookup("miss", None)
        return None

    def _load_disk(self, path: Path) -> KarhunenLoeveBasis:
        """Digest-verified parse of one disk entry."""
        data = read_verified(path, verify=self.verify_digests)
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as npz:
                return KarhunenLoeveBasis(
                    eigenvalues=npz["eigenvalues"],
                    eigenvectors=npz["eigenvectors"],
                )
        except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError,
                ReproError) as exc:
            raise IntegrityError(
                f"corrupt K-L basis {path.name}: {exc}"
            ) from exc

    def put(self, key: str, basis: KarhunenLoeveBasis) -> None:
        """Insert a basis under a key in both levels."""
        if not key:
            raise CacheError("cache key must be non-empty")
        self._remember(key, basis)
        path = self.disk_path(key)
        if path is not None and not path.exists():
            tmp = path.with_suffix(".tmp.npz")
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                np.savez(
                    tmp,
                    eigenvalues=basis.eigenvalues,
                    eigenvectors=basis.eigenvectors,
                )
                digest = sha256_bytes(tmp.read_bytes())
                os.replace(tmp, path)  # atomic against concurrent readers
                write_digest(path, digest)
            except OSError as exc:
                raise CacheError(
                    f"cannot write K-L basis to cache_dir {self.cache_dir}: {exc}"
                ) from exc
        self.stats.stores += 1
        if obs.enabled():
            obs.counter_add("repro_cache_stores_total", 1, {"cache": "kl"})
            obs.counter_add(
                "repro_cache_bytes_total",
                basis.eigenvalues.nbytes + basis.eigenvectors.nbytes,
                {"cache": "kl", "event": "store"},
            )

    def _remember(self, key: str, basis: KarhunenLoeveBasis) -> None:
        self._memory[key] = basis
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def contains(self, key: str, on_disk: bool = False) -> bool:
        """Membership test that does not touch the hit/miss counters."""
        if not on_disk and key in self._memory:
            return True
        path = self.disk_path(key)
        return path is not None and path.exists()

    # -- the main entry point ------------------------------------------------

    def get_or_compute(
        self,
        distances: DistanceMatrices,
        patch: np.ndarray,
        corr_len_strike_km: float,
        corr_len_dip_km: float,
        hurst: float = 0.75,
        n_modes: int | None = None,
    ) -> KarhunenLoeveBasis:
        """Return the patch basis for these inputs, computing it at most once.

        The cold path runs the exact kernel calls
        :meth:`~repro.seismo.ruptures.RuptureGenerator._sample_slip` runs
        without a cache (unique-lag correlation + truncated ``eigh``), so
        warm hits are bit-identical to the uncached computation. In
        quantized mode the lengths are snapped first (numerics-changing;
        see :attr:`quantize_step_km`).
        """
        patch = np.asarray(patch, dtype=np.int64)
        corr_s, corr_d = self.effective_lengths(
            corr_len_strike_km, corr_len_dip_km
        )
        key = kl_basis_key(
            distances, patch, corr_s, corr_d, hurst=hurst, n_modes=n_modes
        )
        basis = self.get(key)
        if basis is None:
            corr = von_karman_correlation(
                distances.along_strike[np.ix_(patch, patch)],
                distances.down_dip[np.ix_(patch, patch)],
                corr_s,
                corr_d,
                hurst,
            )
            basis = KarhunenLoeveBasis.from_correlation(corr, n_modes=n_modes)
            self.put(key, basis)
        return basis

    # -- maintenance ---------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the memory level; with ``disk=True`` also the disk store."""
        self._memory.clear()
        if disk and self.cache_dir is not None and self.cache_dir.exists():
            for path in self.cache_dir.glob("kl_*.npz"):
                path.unlink()
            for path in self.cache_dir.glob("kl_*.npz.sha256"):
                path.unlink()

    def memory_keys(self) -> list[str]:
        """Keys currently resident in memory, LRU-oldest first."""
        return list(self._memory)

    def disk_keys(self) -> list[str]:
        """Keys present in the disk store."""
        if self.cache_dir is None or not self.cache_dir.exists():
            return []
        return sorted(
            p.name[len("kl_") : -len(".npz")]
            for p in self.cache_dir.glob("kl_*.npz")
        )
