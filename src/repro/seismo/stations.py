"""GNSS station networks.

The paper runs every experiment with two input station lists for the
Chilean subduction zone: a **full** list of 121 operating stations and a
**small** 2-station list. We do not have the real station catalog, so
:func:`chilean_network` synthesizes a coastal network with the same
geographic character (a dense quasi-linear coastal chain with scatter
inland) and, crucially, the same *size knob*, which is what drives the
workflow cost differences the paper measures.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import StationError
from repro.seismo.geo import haversine_km

__all__ = [
    "Station",
    "StationNetwork",
    "chilean_network",
    "FULL_CHILE_STATIONS",
    "SMALL_CHILE_STATIONS",
]

#: Station counts used throughout the paper's experiments.
FULL_CHILE_STATIONS = 121
SMALL_CHILE_STATIONS = 2


@dataclass(frozen=True)
class Station:
    """A single GNSS station.

    Attributes
    ----------
    name:
        Unique 4-8 character station code.
    lon, lat:
        Geographic coordinates in degrees.
    sample_rate_hz:
        Output sample rate of the displacement time series (high-rate
        GNSS is conventionally 1 Hz).
    """

    name: str
    lon: float
    lat: float
    sample_rate_hz: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or len(self.name) > 8:
            raise StationError(f"station name must be 1-8 chars, got {self.name!r}")
        if not (-180.0 <= self.lon <= 360.0 and -90.0 <= self.lat <= 90.0):
            raise StationError(f"station {self.name}: bad coordinates ({self.lon}, {self.lat})")
        if self.sample_rate_hz <= 0:
            raise StationError(f"station {self.name}: sample rate must be positive")


class StationNetwork:
    """An ordered, name-unique collection of :class:`Station` objects."""

    def __init__(self, stations: Iterable[Station], name: str = "network") -> None:
        self.name = name
        self._stations: list[Station] = list(stations)
        if not self._stations:
            raise StationError("a station network must contain at least one station")
        names = [s.name for s in self._stations]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise StationError(f"duplicate station names: {dupes}")
        self._by_name = {s.name: s for s in self._stations}

    def __len__(self) -> int:
        return len(self._stations)

    def __iter__(self) -> Iterator[Station]:
        return iter(self._stations)

    def __getitem__(self, key: int | str) -> Station:
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                raise StationError(f"no station named {key!r} in {self.name}") from None
        return self._stations[key]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    @property
    def names(self) -> list[str]:
        """Station codes in network order."""
        return [s.name for s in self._stations]

    @property
    def lons(self) -> np.ndarray:
        """Longitudes as an array, network order."""
        return np.array([s.lon for s in self._stations])

    @property
    def lats(self) -> np.ndarray:
        """Latitudes as an array, network order."""
        return np.array([s.lat for s in self._stations])

    def distances_to_km(self, lon: float, lat: float) -> np.ndarray:
        """Great-circle distance from each station to a point, in km."""
        return np.asarray(haversine_km(self.lons, self.lats, lon, lat))

    def subset(self, count: int) -> "StationNetwork":
        """First ``count`` stations as a new network (e.g. the 2-station input)."""
        if not (1 <= count <= len(self)):
            raise StationError(f"subset size {count} outside 1..{len(self)}")
        return StationNetwork(self._stations[:count], name=f"{self.name}[:{count}]")

    # -- MudPy-style station file (.gflist-like): name lon lat ------------

    def write_station_file(self, path: str | Path) -> Path:
        """Write the network as a MudPy-style whitespace table."""
        path = Path(path)
        lines = [f"# station file for {self.name}: name lon lat"]
        lines += [f"{s.name} {s.lon:.5f} {s.lat:.5f}" for s in self._stations]
        path.write_text("\n".join(lines) + "\n")
        return path

    @classmethod
    def read_station_file(cls, path: str | Path, name: str | None = None) -> "StationNetwork":
        """Read a network written by :meth:`write_station_file`."""
        path = Path(path)
        stations: list[Station] = []
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise StationError(f"{path}:{lineno}: expected 'name lon lat', got {raw!r}")
            try:
                stations.append(Station(parts[0], float(parts[1]), float(parts[2])))
            except ValueError as exc:
                raise StationError(f"{path}:{lineno}: {exc}") from exc
        if not stations:
            raise StationError(f"{path}: no stations found")
        return cls(stations, name=name or path.stem)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"StationNetwork({self.name!r}, n={len(self)})"


def chilean_network(
    n_stations: int = FULL_CHILE_STATIONS,
    seed: int = 20100227,
    coast_lon: float = -71.3,
    lat_min: float = -38.0,
    lat_max: float = -22.0,
) -> StationNetwork:
    """Synthesize the Chilean GNSS network used by the experiments.

    Stations are spread quasi-uniformly along the coast between
    ``lat_min`` and ``lat_max`` with small longitudinal scatter inland —
    the geometry of the real >120-station Chilean network that has
    operated since the 2010 Maule earthquake. Deterministic for a given
    seed so the "full Chilean input" is a stable artifact.

    Parameters
    ----------
    n_stations:
        Number of stations; the paper uses 121 ("full") and 2 ("small").
    seed:
        Seed for the placement scatter (default: date of the Maule event).
    """
    if n_stations < 1:
        raise StationError(f"need at least one station, got {n_stations}")
    rng = np.random.default_rng(seed)
    lats = np.linspace(lat_min, lat_max, n_stations)
    lats = lats + rng.normal(0.0, 0.08, n_stations)
    lons = coast_lon + np.abs(rng.normal(0.35, 0.45, n_stations))  # inland (east)
    stations = [
        Station(name=f"CH{i:03d}", lon=float(lons[i]), lat=float(lats[i]))
        for i in range(n_stations)
    ]
    return StationNetwork(stations, name=f"chile_{n_stations}sta")
