"""Geodesy helpers: great-circle distances and local tangent projections.

The seismic kernels work in a local east-north-up (ENU) Cartesian frame
in kilometres. Fault geometries and station catalogs are defined in
geographic coordinates (longitude, latitude in degrees; depth in km,
positive down), and this module holds the conversions.

All functions are vectorized over NumPy arrays; scalars work too.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EARTH_RADIUS_KM",
    "haversine_km",
    "LocalProjection",
    "distance_3d_km",
]

EARTH_RADIUS_KM = 6371.0


def haversine_km(
    lon1: np.ndarray | float,
    lat1: np.ndarray | float,
    lon2: np.ndarray | float,
    lat2: np.ndarray | float,
) -> np.ndarray | float:
    """Great-circle (surface) distance in km between coordinate pairs.

    Inputs are degrees and broadcast against each other, so a full
    station-by-subfault distance matrix is one call with shaped inputs.
    """
    lon1r, lat1r, lon2r, lat2r = (
        np.radians(np.asarray(x, dtype=float)) for x in (lon1, lat1, lon2, lat2)
    )
    dlat = lat2r - lat1r
    dlon = lon2r - lon1r
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1r) * np.cos(lat2r) * np.sin(dlon / 2.0) ** 2
    # Clip guards against tiny negative values from rounding.
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


def distance_3d_km(
    lon1: np.ndarray | float,
    lat1: np.ndarray | float,
    depth1: np.ndarray | float,
    lon2: np.ndarray | float,
    lat2: np.ndarray | float,
    depth2: np.ndarray | float,
) -> np.ndarray | float:
    """Slant distance in km including the depth difference.

    Uses the great-circle surface distance as the horizontal leg, which
    is accurate to well under a percent at the regional (<1500 km) scales
    the simulator works at.
    """
    horiz = haversine_km(lon1, lat1, lon2, lat2)
    dz = np.asarray(depth2, dtype=float) - np.asarray(depth1, dtype=float)
    return np.sqrt(horiz**2 + dz**2)


class LocalProjection:
    """Equirectangular projection to a local ENU frame in kilometres.

    Adequate for the few-hundred-km regional extents the simulator uses;
    the along-parallel scale is fixed at the reference latitude, which is
    exactly how MudPy's internal ``llz2utm``-style helpers are used (a
    single projection per fault model).

    Parameters
    ----------
    lon0, lat0:
        Geographic origin in degrees. ``to_enu(lon0, lat0)`` is (0, 0).
    """

    def __init__(self, lon0: float, lat0: float) -> None:
        if not (-180.0 <= lon0 <= 360.0) or not (-90.0 <= lat0 <= 90.0):
            raise ValueError(f"invalid projection origin ({lon0}, {lat0})")
        self.lon0 = float(lon0)
        self.lat0 = float(lat0)
        self._km_per_deg_lat = np.pi * EARTH_RADIUS_KM / 180.0
        self._km_per_deg_lon = self._km_per_deg_lat * np.cos(np.radians(lat0))

    def to_enu(
        self, lon: np.ndarray | float, lat: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Geographic degrees -> (east_km, north_km)."""
        east = (np.asarray(lon, dtype=float) - self.lon0) * self._km_per_deg_lon
        north = (np.asarray(lat, dtype=float) - self.lat0) * self._km_per_deg_lat
        return east, north

    def to_geographic(
        self, east_km: np.ndarray | float, north_km: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray]:
        """(east_km, north_km) -> geographic degrees (lon, lat)."""
        lon = self.lon0 + np.asarray(east_km, dtype=float) / self._km_per_deg_lon
        lat = self.lat0 + np.asarray(north_km, dtype=float) / self._km_per_deg_lat
        return lon, lat

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LocalProjection(lon0={self.lon0}, lat0={self.lat0})"
