"""Kinematic rupture parameters: rise times, onset times, source pulses.

Given a slip distribution on a patch of subfaults, FakeQuakes assigns
each subfault a **rise time** (how long it takes the slip to occur,
scaled from local slip amplitude) and an **onset time** (when slip
starts, from a rupture front expanding at a fraction of the shear-wave
speed from the hypocenter). The waveform synthesizer then convolves each
subfault's slip-rate pulse with its Green's function.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RuptureError

__all__ = [
    "DEFAULT_SHEAR_VELOCITY_KMS",
    "DEFAULT_RUPTURE_VELOCITY_FRACTION",
    "rise_times",
    "onset_times",
    "slip_ramp",
]

#: Crustal shear-wave speed used for travel/rupture timing (km/s).
DEFAULT_SHEAR_VELOCITY_KMS = 3.5

#: Rupture front speed as a fraction of the shear-wave speed.
DEFAULT_RUPTURE_VELOCITY_FRACTION = 0.8


def rise_times(
    slip_m: np.ndarray,
    mean_rise_s: float = 8.0,
    exponent: float = 0.5,
    minimum_s: float = 1.0,
) -> np.ndarray:
    """Per-subfault rise time scaled from slip amplitude.

    Follows the common kinematic-model practice (e.g. Graves & Pitarka)
    of rise time proportional to ``slip**exponent``, normalized so the
    slip-weighted mean rise time equals ``mean_rise_s``.

    Parameters
    ----------
    slip_m:
        Non-negative slip per subfault (m).
    mean_rise_s:
        Target mean rise time over slipping subfaults (s).
    exponent:
        Slip-to-rise-time exponent, conventionally 0.5.
    minimum_s:
        Floor applied after scaling so no pulse is pathologically short.
    """
    slip = np.asarray(slip_m, dtype=float)
    if np.any(slip < 0):
        raise RuptureError("slip must be non-negative")
    if mean_rise_s <= 0 or minimum_s <= 0:
        raise RuptureError("rise-time scales must be positive")
    shaped = slip**exponent
    active = shaped > 0
    if not np.any(active):
        # Zero-slip patch: all rise times at the floor.
        return np.full_like(slip, minimum_s)
    shaped_mean = float(np.mean(shaped[active]))
    rise = np.where(active, shaped * (mean_rise_s / shaped_mean), minimum_s)
    return np.maximum(rise, minimum_s)


def onset_times(
    east_km: np.ndarray,
    north_km: np.ndarray,
    depth_km: np.ndarray,
    hypocenter_index: int,
    rupture_velocity_kms: float | None = None,
    shear_velocity_kms: float = DEFAULT_SHEAR_VELOCITY_KMS,
    rupture_velocity_fraction: float = DEFAULT_RUPTURE_VELOCITY_FRACTION,
) -> np.ndarray:
    """Rupture onset time of each subfault from an expanding front.

    The front travels at ``rupture_velocity_kms`` (or
    ``fraction * shear_velocity``) along straight rays from the
    hypocenter subfault — the standard constant-velocity approximation.

    Returns onset times in seconds, zero at the hypocenter.
    """
    east = np.asarray(east_km, dtype=float)
    north = np.asarray(north_km, dtype=float)
    depth = np.asarray(depth_km, dtype=float)
    if not (east.shape == north.shape == depth.shape):
        raise RuptureError("coordinate arrays must share a shape")
    n = east.shape[0]
    if not (0 <= hypocenter_index < n):
        raise RuptureError(f"hypocenter index {hypocenter_index} outside 0..{n - 1}")
    vr = (
        rupture_velocity_kms
        if rupture_velocity_kms is not None
        else rupture_velocity_fraction * shear_velocity_kms
    )
    if vr <= 0:
        raise RuptureError(f"rupture velocity must be positive, got {vr}")
    dist = np.sqrt(
        (east - east[hypocenter_index]) ** 2
        + (north - north[hypocenter_index]) ** 2
        + (depth - depth[hypocenter_index]) ** 2
    )
    return dist / vr


def slip_ramp(t: np.ndarray, onset_s: float, rise_s: float) -> np.ndarray:
    """Normalized cosine-ramp slip history: 0 before onset, 1 after rise.

    ``s(t) = 0.5 * (1 - cos(pi * (t - onset)/rise))`` inside the ramp.
    This is the integral shape of a raised-cosine slip-rate pulse — a
    smooth, band-limited source time function appropriate for 1 Hz GNSS
    displacement synthesis.
    """
    if rise_s <= 0:
        raise RuptureError(f"rise time must be positive, got {rise_s}")
    t = np.asarray(t, dtype=float)
    x = (t - onset_s) / rise_s
    ramp = 0.5 * (1.0 - np.cos(np.pi * np.clip(x, 0.0, 1.0)))
    return ramp
