"""Frequency-domain waveform analysis and comparison.

Goldberg & Melgar (2020) validated FakeQuakes against the 2014 Iquique
earthquake "in both frequency and time domains". This module provides
that toolkit for our products:

* :func:`displacement_spectrum` — amplitude spectrum of a station's
  displacement record,
* :func:`spectral_falloff` — the high- vs low-band amplitude ratio
  (finite rise times make displacement spectra fall off at high
  frequency; a flat spectrum flags unphysical synthetics),
* :func:`compare_waveform_sets` — the G&M-style two-domain comparison
  between a synthetic and a reference waveform set (e.g. two GF
  methods, or synthetic vs replayed-observation), returning per-station
  misfits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WaveformError
from repro.seismo.waveforms import WaveformSet

__all__ = [
    "displacement_spectrum",
    "displacement_spectra",
    "spectral_falloff",
    "WaveformComparison",
    "compare_waveform_sets",
]


def displacement_spectra(
    ws: WaveformSet, component: int = 2, detrend: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectra of *all* stations in one transform.

    Batched form of :func:`displacement_spectrum`: the detrend ramps and
    the ``rfft`` run over the whole ``(n_stations, n_samples)`` block at
    once instead of one station per call, producing exactly the same
    values row by row.

    Returns
    -------
    (freqs_hz, amplitudes):
        Frequencies (DC excluded) and a ``(n_stations, n_freqs)``
        amplitude array ordered like ``ws.station_names``.
    """
    if not (0 <= component <= 2):
        raise WaveformError(f"component must be 0..2, got {component}")
    series = ws.data[:, component, :].astype(float)
    if detrend:
        ramps = np.linspace(0.0, series[:, -1], series.shape[1], axis=1)
        series = series - ramps
    spectra = np.abs(np.fft.rfft(series, axis=1))
    freqs = np.fft.rfftfreq(series.shape[1], d=ws.dt_s)
    return freqs[1:], spectra[:, 1:]


def displacement_spectrum(
    ws: WaveformSet, station: str, component: int = 2, detrend: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectrum of one station component.

    Parameters
    ----------
    ws:
        The waveform set.
    station:
        Station code.
    component:
        0 = east, 1 = north, 2 = up.
    detrend:
        Remove the permanent (static) offset ramp before transforming —
        otherwise the step function's 1/f tail dominates everything.

    Returns
    -------
    (freqs_hz, amplitude):
        Frequencies (DC excluded) and spectral amplitude.
    """
    if not (0 <= component <= 2):
        raise WaveformError(f"component must be 0..2, got {component}")
    series = ws.station(station)[component].astype(float)
    if detrend:
        # Remove a linear ramp from 0 to the final offset: the static
        # step's contribution, leaving the dynamic signal.
        ramp = np.linspace(0.0, series[-1], series.size)
        series = series - ramp
    spectrum = np.abs(np.fft.rfft(series))
    freqs = np.fft.rfftfreq(series.size, d=ws.dt_s)
    return freqs[1:], spectrum[1:]


def spectral_falloff(
    ws: WaveformSet,
    station: str,
    component: int = 2,
    split_hz: float | None = None,
) -> float:
    """High-band / low-band mean spectral amplitude ratio.

    Physical displacement records are low-frequency dominated, so the
    ratio is well below 1; white noise gives ~1. ``split_hz`` defaults
    to a quarter of Nyquist.
    """
    freqs, amp = displacement_spectrum(ws, station, component)
    nyquist = 0.5 / ws.dt_s
    split = split_hz if split_hz is not None else 0.25 * nyquist
    if not (freqs[0] < split < freqs[-1]):
        raise WaveformError(
            f"split frequency {split} Hz outside the resolvable band "
            f"({freqs[0]:.4f}..{freqs[-1]:.4f} Hz)"
        )
    low = amp[freqs <= split]
    high = amp[freqs > split]
    low_mean = float(np.mean(low))
    if low_mean <= 0:
        raise WaveformError(f"degenerate (all-zero) record at {station}")
    return float(np.mean(high)) / low_mean


@dataclass(frozen=True)
class WaveformComparison:
    """Per-station two-domain misfits between two waveform sets.

    Attributes
    ----------
    time_rms_m:
        RMS of the 3-component time-domain residual per station.
    spectral_log_misfit:
        Mean |log10 ratio| of vertical amplitude spectra per station
        (0 = identical spectra; 1 = an order of magnitude apart).
    station_names:
        Row labels for both arrays.
    """

    time_rms_m: np.ndarray
    spectral_log_misfit: np.ndarray
    station_names: tuple[str, ...]

    @property
    def mean_time_rms_m(self) -> float:
        """Network-mean time-domain RMS misfit."""
        return float(np.mean(self.time_rms_m))

    @property
    def mean_spectral_misfit(self) -> float:
        """Network-mean spectral misfit (log10 units)."""
        return float(np.mean(self.spectral_log_misfit))


def compare_waveform_sets(a: WaveformSet, b: WaveformSet) -> WaveformComparison:
    """Goldberg & Melgar-style comparison of two waveform sets.

    Both sets must share the station list and sample interval; the
    shorter record length is used for both.

    Raises
    ------
    WaveformError
        On mismatched stations or sampling.
    """
    if a.station_names != b.station_names:
        raise WaveformError("waveform sets have different station lists")
    if a.dt_s != b.dt_s:
        raise WaveformError(f"sample intervals differ: {a.dt_s} vs {b.dt_s}")
    nt = min(a.n_samples, b.n_samples)
    resid = a.data[:, :, :nt] - b.data[:, :, :nt]
    time_rms = np.sqrt(np.mean(resid**2, axis=(1, 2)))

    # Both sets' spectra in two batched transforms instead of
    # 2 * n_stations single-row calls.
    _, spec_a = displacement_spectra(a)
    _, spec_b = displacement_spectra(b)
    n = min(spec_a.shape[1], spec_b.shape[1])
    log_misfits = []
    for sa, sb in zip(spec_a[:, :n], spec_b[:, :n]):
        valid = (sa > 0) & (sb > 0)
        if not np.any(valid):
            log_misfits.append(0.0)
            continue
        log_misfits.append(float(np.mean(np.abs(np.log10(sa[valid] / sb[valid])))))
    return WaveformComparison(
        time_rms_m=time_rms,
        spectral_log_misfit=np.asarray(log_misfits),
        station_names=a.station_names,
    )
