"""Physical validation checks for synthesized products.

Goldberg & Melgar (2020) validated FakeQuakes against the 2014 Mw 8.1
Chilean earthquake; offline we validate against *physics invariants and
published empirical regressions* instead:

* moment closure — realized Mw equals the target,
* PGD magnitude/distance scaling — peak ground displacement follows the
  Melgar et al. (2015) regression shape
  ``log10 PGD = A + B*Mw + C*Mw*log10 R`` (grows with Mw, decays with R),
* static-field sanity — displacement ramps are monotone in the final
  window and the final offset matches the static GF prediction.

The checks return structured results so tests, examples and the VDC
curation pipeline can all consume them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WaveformError
from repro.seismo.geometry import FaultGeometry
from repro.seismo.ruptures import Rupture
from repro.seismo.stations import StationNetwork
from repro.seismo.waveforms import WaveformSet

__all__ = [
    "moment_closure_error",
    "pgd_regression",
    "PgdFit",
    "static_consistency",
    "validate_waveform_set",
]


def moment_closure_error(rupture: Rupture, geometry: FaultGeometry) -> float:
    """Absolute difference between target and realized Mw."""
    return abs(rupture.actual_mw - rupture.target_mw)


@dataclass(frozen=True)
class PgdFit:
    """Least-squares fit of the PGD scaling regression.

    ``log10 PGD = a + b*Mw + c*Mw*log10 R`` with PGD in metres and R the
    hypocentral distance in km. For physically sensible synthetics we
    expect ``b > 0`` (larger quakes displace more) and ``c < 0``
    (amplitude decays with distance).
    """

    a: float
    b: float
    c: float
    residual_std: float
    n_points: int


def pgd_regression(
    waveform_sets: list[WaveformSet],
    ruptures: list[Rupture],
    geometry: FaultGeometry,
    network: StationNetwork,
    min_pgd_m: float = 1e-6,
) -> PgdFit:
    """Fit the Melgar-style PGD regression over a catalog.

    Parameters
    ----------
    waveform_sets, ruptures:
        Parallel lists (same order, same length).
    min_pgd_m:
        Stations with PGD below this are dropped (numerically silent
        far-field points would otherwise dominate the fit).
    """
    if len(waveform_sets) != len(ruptures):
        raise WaveformError(
            f"{len(waveform_sets)} waveform sets vs {len(ruptures)} ruptures"
        )
    if not waveform_sets:
        raise WaveformError("need at least one waveform set to fit PGD scaling")

    rows = []
    rhs = []
    for ws, rupture in zip(waveform_sets, ruptures):
        pgd = ws.pgd_m()
        # Hypocentral distance per station.
        hypo_sub = rupture.subfault_indices[rupture.hypocenter_index]
        hypo_lon = geometry.lon[hypo_sub]
        hypo_lat = geometry.lat[hypo_sub]
        hypo_depth = geometry.depth_km[hypo_sub]
        surface = network.distances_to_km(float(hypo_lon), float(hypo_lat))
        r = np.sqrt(surface**2 + float(hypo_depth) ** 2)
        keep = pgd > min_pgd_m
        mw = rupture.actual_mw
        for dist, amp in zip(r[keep], pgd[keep]):
            rows.append([1.0, mw, mw * np.log10(dist)])
            rhs.append(np.log10(amp))
    if len(rows) < 3:
        raise WaveformError("not enough PGD observations above threshold to fit")
    design = np.array(rows)
    y = np.array(rhs)
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    resid = y - design @ coef
    return PgdFit(
        a=float(coef[0]),
        b=float(coef[1]),
        c=float(coef[2]),
        residual_std=float(np.std(resid)),
        n_points=len(y),
    )


def static_consistency(ws: WaveformSet, tail_fraction: float = 0.1) -> float:
    """Max drift of the record tail relative to its final offset.

    After the rupture and all arrivals, displacement must be flat (the
    static field). Returns the worst-case ratio
    ``max |u(t) - u(end)| / max(|u(end)|, 1e-9)`` over the tail window —
    near zero for clean synthetics.
    """
    if not (0.0 < tail_fraction <= 0.5):
        raise WaveformError(f"tail_fraction must be in (0, 0.5], got {tail_fraction}")
    nt = ws.n_samples
    tail = max(2, int(nt * tail_fraction))
    final = ws.data[:, :, -1][:, :, None]
    drift = np.abs(ws.data[:, :, -tail:] - final)
    scale = max(float(np.max(np.abs(final))), 1e-9)
    return float(np.max(drift) / scale)


def validate_waveform_set(
    ws: WaveformSet,
    rupture: Rupture,
    geometry: FaultGeometry,
    mw_tolerance: float = 1e-6,
    tail_tolerance: float = 0.05,
) -> dict[str, float | bool]:
    """Run the per-product validation battery; returns a report dict.

    Keys: ``moment_error``, ``tail_drift``, ``max_pgd_m``, ``passed``.
    """
    moment_err = moment_closure_error(rupture, geometry)
    drift = static_consistency(ws)
    report = {
        "moment_error": moment_err,
        "tail_drift": drift,
        "max_pgd_m": float(np.max(ws.pgd_m())),
        "passed": bool(moment_err <= mw_tolerance and drift <= tail_tolerance),
    }
    return report
