"""Von Kármán correlated random fields via Karhunen-Loève expansion.

FakeQuakes' "semistochastic" slip (LeVeque, Waagan & González 2016;
Melgar et al. 2016) draws heterogeneous slip from a random field whose
spatial correlation follows a von Kármán autocorrelation function with
anisotropic correlation lengths along strike and down dip. The field is
sampled with a truncated Karhunen-Loève (K-L) expansion: eigendecompose
the correlation matrix once, then each realization is a cheap linear
combination of the leading eigenmodes.

This module is deliberately generic (it takes the two distance matrices
and correlation lengths) so it is reusable and property-testable on its
own; the rupture generator layers magnitude scaling and positivity on
top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.special

from repro.errors import RuptureError
from repro.seismo.distance import DistanceMatrices

__all__ = ["von_karman_correlation", "KarhunenLoeveBasis"]


def von_karman_correlation(
    d_strike: np.ndarray,
    d_dip: np.ndarray,
    corr_len_strike_km: float,
    corr_len_dip_km: float,
    hurst: float = 0.75,
    unique_lags: bool = True,
) -> np.ndarray:
    """Anisotropic von Kármán correlation matrix.

    ``C(r) = G(r) / G(0)`` with ``G(r) = r**H * K_H(r)`` where ``K_H`` is
    the modified Bessel function of the second kind and the normalized
    lag is ``r = sqrt((ds/as)^2 + (dd/ad)^2)`` for correlation lengths
    ``as`` (strike) and ``ad`` (dip). ``H`` is the Hurst exponent; 0.75
    is the FakeQuakes default.

    Parameters
    ----------
    d_strike, d_dip:
        (n, n) separation matrices in km (see :class:`DistanceMatrices`).
    corr_len_strike_km, corr_len_dip_km:
        Correlation lengths in km; must be positive.
    hurst:
        Hurst exponent in (0, 1).
    unique_lags:
        Evaluate the Bessel kernel once per *unique* normalized lag and
        scatter the results back (default). On the regular mesh a patch
        of p subfaults has only O(n_strike * n_dip) distinct separation
        pairs, so this cuts the O(p^2) ``kv`` evaluations — the dominant
        Phase-A cost — down to the handful of distinct lags. Identical
        float inputs give identical ``kv`` outputs, so the result is
        bit-identical to the dense evaluation (``False``, kept for
        benchmarking the dense arm).
    """
    if corr_len_strike_km <= 0 or corr_len_dip_km <= 0:
        raise RuptureError(
            f"correlation lengths must be positive, got "
            f"({corr_len_strike_km}, {corr_len_dip_km})"
        )
    if not (0.0 < hurst < 1.0):
        raise RuptureError(f"Hurst exponent must be in (0, 1), got {hurst}")
    r = np.hypot(
        np.asarray(d_strike, dtype=float) / corr_len_strike_km,
        np.asarray(d_dip, dtype=float) / corr_len_dip_km,
    )
    # G(0) is a removable singularity: lim_{r->0} r^H K_H(r) =
    # 2^(H-1) * Gamma(H). Mask zeros to avoid warnings, then patch.
    g0 = 2.0 ** (hurst - 1.0) * scipy.special.gamma(hurst)
    if unique_lags:
        lags, inverse = np.unique(r, return_inverse=True)
        zero = lags == 0.0
        lz = np.where(zero, 1.0, lags)  # placeholder value, overwritten below
        g = lz**hurst * scipy.special.kv(hurst, lz)
        g[zero] = g0
        out = g[inverse.reshape(r.shape)]
    else:
        zero = r == 0.0
        rz = np.where(zero, 1.0, r)  # placeholder value, overwritten below
        out = rz**hurst * scipy.special.kv(hurst, rz)
        out[zero] = g0
    corr = out / g0
    # Numerical cleanup: exact symmetry and unit diagonal.
    corr = 0.5 * (corr + corr.T)
    np.fill_diagonal(corr, 1.0)
    return corr


@dataclass(frozen=True)
class KarhunenLoeveBasis:
    """Truncated K-L basis of a correlation matrix.

    Attributes
    ----------
    eigenvalues:
        The ``k`` largest eigenvalues, descending, all non-negative
        (tiny negative values from rounding are clipped to zero).
    eigenvectors:
        (n, k) matrix of the matching eigenvectors.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray

    def __post_init__(self) -> None:
        if self.eigenvalues.ndim != 1:
            raise RuptureError("eigenvalues must be a vector")
        if self.eigenvectors.ndim != 2 or self.eigenvectors.shape[1] != self.eigenvalues.shape[0]:
            raise RuptureError(
                f"eigenvector shape {self.eigenvectors.shape} inconsistent with "
                f"{self.eigenvalues.shape[0]} eigenvalues"
            )
        if np.any(self.eigenvalues < 0):
            raise RuptureError("eigenvalues must be non-negative after clipping")

    @property
    def n_points(self) -> int:
        """Number of spatial points (subfaults) in the field."""
        return self.eigenvectors.shape[0]

    @property
    def n_modes(self) -> int:
        """Number of retained K-L modes."""
        return self.eigenvalues.shape[0]

    @classmethod
    def from_correlation(
        cls, correlation: np.ndarray, n_modes: int | None = None
    ) -> "KarhunenLoeveBasis":
        """Eigendecompose a symmetric correlation matrix.

        Uses :func:`scipy.linalg.eigh` with ``subset_by_index`` so only
        the leading ``n_modes`` eigenpairs are computed — the correlation
        matrix can be large (n_subfaults^2) and, per the optimization
        guidance, we avoid the full decomposition when a truncation is
        requested.
        """
        c = np.asarray(correlation, dtype=float)
        if c.ndim != 2 or c.shape[0] != c.shape[1]:
            raise RuptureError(f"correlation must be square, got {c.shape}")
        n = c.shape[0]
        k = n if n_modes is None else int(n_modes)
        if not (1 <= k <= n):
            raise RuptureError(f"n_modes must be in 1..{n}, got {n_modes}")
        vals, vecs = scipy.linalg.eigh(c, subset_by_index=(n - k, n - 1))
        # eigh returns ascending order; flip to descending. Materialize
        # the flipped view C-contiguous: BLAS picks layout-dependent
        # kernels in ``sample``'s matmul, so a basis reloaded from the
        # K-L cache's .npz store (always contiguous) must share the
        # in-memory layout to stay bit-identical.
        vals = np.clip(vals[::-1], 0.0, None)
        vecs = np.ascontiguousarray(vecs[:, ::-1])
        return cls(eigenvalues=vals, eigenvectors=vecs)

    @classmethod
    def from_distances(
        cls,
        distances: DistanceMatrices,
        corr_len_strike_km: float,
        corr_len_dip_km: float,
        hurst: float = 0.75,
        n_modes: int | None = None,
    ) -> "KarhunenLoeveBasis":
        """Convenience: correlation matrix + decomposition in one step."""
        corr = von_karman_correlation(
            distances.along_strike,
            distances.down_dip,
            corr_len_strike_km,
            corr_len_dip_km,
            hurst,
        )
        return cls.from_correlation(corr, n_modes=n_modes)

    def restricted(self, indices: np.ndarray) -> "KarhunenLoeveBasis":
        """Basis restricted to a subset of points (a rupture patch).

        Restriction of eigenvectors is not a true K-L basis of the
        restricted correlation, but FakeQuakes' practice of sampling on
        the patch is equivalent to drawing the global field and reading
        it on the patch, which is exactly what restriction gives us.
        """
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            raise RuptureError("cannot restrict K-L basis to an empty patch")
        return KarhunenLoeveBasis(
            eigenvalues=self.eigenvalues.copy(),
            eigenvectors=self.eigenvectors[idx, :],
        )

    def sample(self, rng: np.random.Generator, sigma: float = 1.0) -> np.ndarray:
        """Draw one zero-mean correlated field realization of length n.

        ``f = sum_k sqrt(lambda_k) z_k v_k`` with z ~ N(0, sigma^2).
        """
        if sigma < 0:
            raise RuptureError(f"sigma must be non-negative, got {sigma}")
        z = rng.normal(0.0, sigma, self.n_modes)
        return self.eigenvectors @ (np.sqrt(self.eigenvalues) * z)
