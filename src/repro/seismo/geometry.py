"""Subduction-zone fault geometry and subfault meshes.

The real FakeQuakes consumes a triangulated or rectangular subfault model
derived from the USGS *Slab2* geometry (Hayes et al. 2018). Slab2 is a
data product we do not have offline, so :func:`build_chile_slab`
synthesizes a geometrically comparable megathrust: a north-south striking
interface off the Chilean coast whose dip steepens with depth, meshed
into rectangular subfaults. The mesh exposes everything downstream code
needs — per-subfault coordinates, strike/dip, area, and the along-strike
/ down-dip index structure used by the distance matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GeometryError
from repro.seismo.geo import LocalProjection

__all__ = [
    "FaultGeometry",
    "build_chile_slab",
    "build_cascadia_slab",
    "CHILE_REFERENCE",
]

#: Reference origin of the synthetic Chilean megathrust (lon, lat degrees).
#: Roughly offshore Iquique, the region of the 2014 Mw 8.1 event the
#: paper's FakeQuakes products were validated against.
CHILE_REFERENCE = (-71.5, -30.0)


@dataclass(frozen=True)
class FaultGeometry:
    """A rectangular-subfault fault model.

    Attributes
    ----------
    name:
        Human-readable model name (e.g. ``"chile_slab"``).
    lon, lat, depth_km:
        Subfault *center* coordinates, flattened arrays of length
        ``n_strike * n_dip`` in C order (strike-major: index
        ``i = i_strike * n_dip + i_dip``).
    strike_deg, dip_deg:
        Per-subfault strike and dip in degrees.
    length_km, width_km:
        Per-subfault along-strike length and down-dip width.
    n_strike, n_dip:
        Mesh dimensions.
    rigidity_pa:
        Shear modulus used for moment computations (Pa).
    """

    name: str
    lon: np.ndarray
    lat: np.ndarray
    depth_km: np.ndarray
    strike_deg: np.ndarray
    dip_deg: np.ndarray
    length_km: np.ndarray
    width_km: np.ndarray
    n_strike: int
    n_dip: int
    rigidity_pa: float = 30e9
    projection: LocalProjection = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = self.n_strike * self.n_dip
        arrays = {
            "lon": self.lon,
            "lat": self.lat,
            "depth_km": self.depth_km,
            "strike_deg": self.strike_deg,
            "dip_deg": self.dip_deg,
            "length_km": self.length_km,
            "width_km": self.width_km,
        }
        for key, arr in arrays.items():
            if arr.shape != (n,):
                raise GeometryError(
                    f"{key} has shape {arr.shape}, expected ({n},) for a "
                    f"{self.n_strike}x{self.n_dip} mesh"
                )
            if not np.all(np.isfinite(arr)):
                raise GeometryError(f"{key} contains non-finite values")
        if np.any(self.depth_km < 0):
            raise GeometryError("subfault depths must be positive-down (km)")
        if self.rigidity_pa <= 0:
            raise GeometryError(f"rigidity must be positive, got {self.rigidity_pa}")
        if self.projection is None:
            proj = LocalProjection(float(np.mean(self.lon)), float(np.mean(self.lat)))
            object.__setattr__(self, "projection", proj)

    # -- derived quantities -------------------------------------------------

    @property
    def n_subfaults(self) -> int:
        """Total number of subfaults in the mesh."""
        return self.n_strike * self.n_dip

    @property
    def area_km2(self) -> np.ndarray:
        """Per-subfault area in km^2."""
        return self.length_km * self.width_km

    @property
    def total_area_km2(self) -> float:
        """Total fault-plane area in km^2."""
        return float(np.sum(self.area_km2))

    def strike_index(self, i: np.ndarray | int) -> np.ndarray | int:
        """Along-strike mesh index of flattened subfault index ``i``."""
        return np.asarray(i) // self.n_dip

    def dip_index(self, i: np.ndarray | int) -> np.ndarray | int:
        """Down-dip mesh index of flattened subfault index ``i``."""
        return np.asarray(i) % self.n_dip

    def enu(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Subfault centers in the local ENU frame: (east, north, down) km."""
        east, north = self.projection.to_enu(self.lon, self.lat)
        return east, north, self.depth_km.copy()

    def subset(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        """Columns for a subset of subfaults, used when writing ``.rupt``."""
        idx = np.asarray(indices, dtype=int)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_subfaults):
            raise GeometryError("subfault index out of range")
        return {
            "lon": self.lon[idx],
            "lat": self.lat[idx],
            "depth_km": self.depth_km[idx],
            "strike_deg": self.strike_deg[idx],
            "dip_deg": self.dip_deg[idx],
            "length_km": self.length_km[idx],
            "width_km": self.width_km[idx],
        }


def build_chile_slab(
    n_strike: int = 30,
    n_dip: int = 15,
    along_strike_km: float = 600.0,
    along_dip_km: float = 180.0,
    trench_lon: float = -72.5,
    reference_lat: float = -30.0,
    shallow_dip_deg: float = 10.0,
    deep_dip_deg: float = 30.0,
    trench_depth_km: float = 5.0,
    rigidity_pa: float = 30e9,
    name: str = "chile_slab",
) -> FaultGeometry:
    """Build the synthetic Chilean megathrust mesh.

    The interface strikes due north (strike 0 deg, dipping east under
    South America). Dip increases linearly from ``shallow_dip_deg`` at
    the trench to ``deep_dip_deg`` at the down-dip edge, so depth grows
    super-linearly down-dip — the qualitative Slab2 shape.

    Parameters mirror the extent of the Chilean experiments in the paper
    (hundreds of km along strike, Mw 8+ capable). Defaults give a
    30 x 15 = 450-subfault mesh with 20 x 12 km subfaults.
    """
    if n_strike < 2 or n_dip < 2:
        raise GeometryError(f"mesh must be at least 2x2, got {n_strike}x{n_dip}")
    if along_strike_km <= 0 or along_dip_km <= 0:
        raise GeometryError("fault extents must be positive")
    if not (0.0 < shallow_dip_deg <= deep_dip_deg < 90.0):
        raise GeometryError(
            f"need 0 < shallow_dip <= deep_dip < 90, got "
            f"{shallow_dip_deg}/{deep_dip_deg}"
        )

    sub_len = along_strike_km / n_strike
    sub_wid = along_dip_km / n_dip
    proj = LocalProjection(trench_lon, reference_lat)

    # Down-dip profile: walk along the interface in `sub_wid` steps,
    # integrating horizontal advance and depth as dip steepens.
    dip_profile = np.linspace(shallow_dip_deg, deep_dip_deg, n_dip)
    dip_rad = np.radians(dip_profile)
    # Midpoint of each down-dip cell.
    horiz_step = sub_wid * np.cos(dip_rad)
    depth_step = sub_wid * np.sin(dip_rad)
    horiz_edge = np.concatenate([[0.0], np.cumsum(horiz_step)])
    depth_edge = np.concatenate([[trench_depth_km], trench_depth_km + np.cumsum(depth_step)])
    horiz_mid = 0.5 * (horiz_edge[:-1] + horiz_edge[1:])
    depth_mid = 0.5 * (depth_edge[:-1] + depth_edge[1:])

    # Along-strike cell centers, symmetric about the reference latitude.
    north_mid = (np.arange(n_strike) + 0.5) * sub_len - along_strike_km / 2.0

    # Build the strike-major flattened mesh.
    north = np.repeat(north_mid, n_dip)
    east = np.tile(horiz_mid, n_strike)
    depth = np.tile(depth_mid, n_strike)
    dip = np.tile(dip_profile, n_strike)

    lon, lat = proj.to_geographic(east, north)
    n = n_strike * n_dip
    return FaultGeometry(
        name=name,
        lon=lon,
        lat=lat,
        depth_km=depth,
        strike_deg=np.zeros(n),
        dip_deg=dip,
        length_km=np.full(n, sub_len),
        width_km=np.full(n, sub_wid),
        n_strike=n_strike,
        n_dip=n_dip,
        rigidity_pa=rigidity_pa,
        projection=proj,
    )


def build_cascadia_slab(
    n_strike: int = 36,
    n_dip: int = 12,
    name: str = "cascadia_slab",
) -> FaultGeometry:
    """Build a synthetic Cascadia megathrust mesh.

    The paper's future work is "experimenting with regions beyond
    Chile"; Cascadia is the canonical second target (Melgar et al. 2016
    built the original FakeQuakes scenarios there). Compared with the
    Chilean model the interface is longer (~1000 km), shallower-dipping,
    and sits off a coast at rather higher latitude; the mesh mechanics
    are identical, so everything downstream (distance matrices, rupture
    generation, GFs) works unchanged.
    """
    return build_chile_slab(
        n_strike=n_strike,
        n_dip=n_dip,
        along_strike_km=1000.0,
        along_dip_km=150.0,
        trench_lon=-125.5,
        reference_lat=45.0,
        shallow_dip_deg=6.0,
        deep_dip_deg=22.0,
        trench_depth_km=4.0,
        name=name,
    )
