"""Catalog-level magnitude statistics and sampling.

FakeQuakes catalogs can draw target magnitudes uniformly (good for
balanced ML training sets — the default of
:class:`~repro.seismo.ruptures.RuptureGenerator`) or following the
Gutenberg-Richter law that real seismicity obeys,
``log10 N(>=M) = a - b*M`` with b ~ 1. This module provides

* :func:`sample_gutenberg_richter` — truncated G-R magnitude draws via
  inverse-CDF sampling,
* :func:`estimate_b_value` — the Aki (1965) maximum-likelihood b-value
  estimator, the standard completeness diagnostic,
* :func:`magnitude_histogram` — binned counts for catalog reports.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RuptureError

__all__ = [
    "sample_gutenberg_richter",
    "estimate_b_value",
    "magnitude_histogram",
]


def sample_gutenberg_richter(
    count: int,
    rng: np.random.Generator,
    mw_min: float = 7.5,
    mw_max: float = 9.2,
    b_value: float = 1.0,
) -> np.ndarray:
    """Draw magnitudes from a doubly-truncated Gutenberg-Richter law.

    Inverse-CDF sampling of the exponential magnitude distribution
    truncated to ``[mw_min, mw_max]``: with ``beta = b ln 10``,

        F(m) = (1 - exp(-beta (m - mw_min))) / (1 - exp(-beta (M - mw_min)))

    Parameters
    ----------
    count:
        Number of magnitudes.
    b_value:
        G-R b (slope); 1.0 is the global average. Must be positive.
    """
    if count < 0:
        raise RuptureError(f"count must be >= 0, got {count}")
    if mw_min >= mw_max:
        raise RuptureError(f"need mw_min < mw_max, got {mw_min} >= {mw_max}")
    if b_value <= 0:
        raise RuptureError(f"b_value must be positive, got {b_value}")
    beta = b_value * np.log(10.0)
    u = rng.random(count)
    span = 1.0 - np.exp(-beta * (mw_max - mw_min))
    return mw_min - np.log(1.0 - u * span) / beta


def estimate_b_value(
    magnitudes: np.ndarray, mw_min: float | None = None
) -> float:
    """Aki (1965) maximum-likelihood b-value.

    ``b = log10(e) / (mean(M) - Mc)`` with ``Mc`` the completeness
    magnitude (defaults to the catalog minimum). The estimator ignores
    the upper truncation, which biases it slightly high for narrow
    ranges — acceptable for the diagnostic role it plays here.
    """
    mags = np.asarray(magnitudes, dtype=float)
    if mags.size < 2:
        raise RuptureError(f"need at least 2 magnitudes, got {mags.size}")
    mc = float(np.min(mags)) if mw_min is None else float(mw_min)
    mean_excess = float(np.mean(mags)) - mc
    if mean_excess <= 0:
        raise RuptureError("degenerate catalog: no magnitude spread above Mc")
    return float(np.log10(np.e) / mean_excess)


def magnitude_histogram(
    magnitudes: np.ndarray, bin_width: float = 0.2
) -> tuple[np.ndarray, np.ndarray]:
    """Binned magnitude counts: (bin_left_edges, counts)."""
    if bin_width <= 0:
        raise RuptureError(f"bin_width must be positive, got {bin_width}")
    mags = np.asarray(magnitudes, dtype=float)
    if mags.size == 0:
        raise RuptureError("empty catalog")
    lo = np.floor(mags.min() / bin_width) * bin_width
    hi = np.ceil(mags.max() / bin_width) * bin_width + bin_width
    edges = np.arange(lo, hi + 0.5 * bin_width, bin_width)
    counts, _ = np.histogram(mags, bins=edges)
    return edges[:-1], counts
