"""MudPy-style file formats and product archives.

MudPy's "rigid" folder structure (the paper's words) revolves around a
few plain-text and binary artifacts:

* ``.rupt`` — a whitespace table with one row per subfault of a rupture
  (position, geometry, slip, kinematics),
* the recyclable distance-matrix ``.npy`` pair (see
  :mod:`repro.seismo.distance`),
* GF archives (``.mseed`` in MudPy; a compressed ``.npz`` bank here),
* per-rupture waveform files.

This module implements the ``.rupt`` format plus a *product archive*: a
directory with a JSON manifest that congregates and labels the thousands
of output files a workflow produces ("After simulation, thousands of
files are congregated, labeled, and archived on OSG storage capacity").
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ArchiveError, RuptureError
from repro.seismo.geometry import FaultGeometry
from repro.seismo.ruptures import Rupture

__all__ = [
    "write_rupt",
    "read_rupt",
    "ProductArchive",
]

_RUPT_COLUMNS = (
    "subfault lon lat depth_km strike_deg dip_deg length_km width_km "
    "slip_m rise_s onset_s"
).split()


def write_rupt(
    rupture: Rupture, geometry: FaultGeometry, path: str | Path
) -> Path:
    """Write a rupture as a MudPy-style ``.rupt`` whitespace table."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    cols = geometry.subset(rupture.subfault_indices)
    lines = [
        f"# rupt {rupture.rupture_id} target_mw={rupture.target_mw:.4f} "
        f"actual_mw={rupture.actual_mw:.4f} hypo={rupture.hypocenter_index}",
        "# " + " ".join(_RUPT_COLUMNS),
    ]
    for i in range(rupture.n_subfaults):
        lines.append(
            f"{rupture.subfault_indices[i]:d} "
            f"{cols['lon'][i]:.5f} {cols['lat'][i]:.5f} {cols['depth_km'][i]:.3f} "
            f"{cols['strike_deg'][i]:.2f} {cols['dip_deg'][i]:.2f} "
            f"{cols['length_km'][i]:.3f} {cols['width_km'][i]:.3f} "
            f"{rupture.slip_m[i]:.6f} {rupture.rise_time_s[i]:.4f} "
            f"{rupture.onset_time_s[i]:.4f}"
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def read_rupt(path: str | Path) -> Rupture:
    """Read a rupture written by :func:`write_rupt`.

    Geometry columns are not re-validated against a mesh here; the
    subfault indices tie the rupture back to its fault model.
    """
    path = Path(path)
    if not path.exists():
        raise RuptureError(f"rupt file not found: {path}")
    lines = path.read_text().splitlines()
    if not lines or not lines[0].startswith("# rupt "):
        raise RuptureError(f"{path}: missing '# rupt' header")
    header = lines[0].split()
    rupture_id = header[2]
    fields = dict(item.split("=", 1) for item in header[3:] if "=" in item)
    try:
        target_mw = float(fields["target_mw"])
        actual_mw = float(fields["actual_mw"])
        hypo = int(fields["hypo"])
    except (KeyError, ValueError) as exc:
        raise RuptureError(f"{path}: malformed header fields: {exc}") from exc

    rows = []
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != len(_RUPT_COLUMNS):
            raise RuptureError(
                f"{path}:{lineno}: expected {len(_RUPT_COLUMNS)} columns, got {len(parts)}"
            )
        rows.append([float(p) for p in parts])
    if not rows:
        raise RuptureError(f"{path}: no subfault rows")
    table = np.array(rows)
    return Rupture(
        rupture_id=rupture_id,
        target_mw=target_mw,
        actual_mw=actual_mw,
        subfault_indices=table[:, 0].astype(int),
        slip_m=table[:, 8],
        rise_time_s=table[:, 9],
        onset_time_s=table[:, 10],
        hypocenter_index=hypo,
    )


@dataclass
class ProductArchive:
    """A labeled directory of simulation products with a JSON manifest.

    The archive groups files by *kind* (``ruptures``, ``gflists``,
    ``waveforms``...), records per-file metadata (rupture id, magnitude,
    station count), and can be reopened for discovery — this is the
    labeled-and-archived output store of FDW runs and the unit the VDC
    catalog ingests (DESIGN.md Fig-7 story).
    """

    root: Path
    name: str = "fdw_products"

    MANIFEST = "manifest.json"

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / self.MANIFEST
        if self._manifest_path.exists():
            self._manifest = json.loads(self._manifest_path.read_text())
            if self._manifest.get("archive") != self.name:
                # Reopening with a different label is almost always an
                # accident; keep the stored name authoritative.
                self.name = self._manifest.get("archive", self.name)
        else:
            self._manifest = {"archive": self.name, "entries": []}
            self._flush()

    def _flush(self) -> None:
        self._manifest_path.write_text(json.dumps(self._manifest, indent=2, sort_keys=True))

    # -- writing -----------------------------------------------------------

    def add_file(
        self,
        source: str | Path,
        kind: str,
        label: str,
        metadata: dict | None = None,
        move: bool = False,
    ) -> Path:
        """Congregate ``source`` into the archive under ``kind/``.

        Parameters
        ----------
        source:
            Existing file to copy (or move) into the archive.
        kind:
            Product category; becomes a subdirectory.
        label:
            Unique label within the kind (used as the stored filename
            stem, suffix preserved).
        move:
            Move instead of copy, for large intermediates.
        """
        source = Path(source)
        if not source.is_file():
            raise ArchiveError(f"source file not found: {source}")
        if any(e["kind"] == kind and e["label"] == label for e in self._manifest["entries"]):
            raise ArchiveError(f"duplicate archive entry {kind}/{label}")
        dest_dir = self.root / kind
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / (label + source.suffix)
        data = source.read_bytes()
        dest.write_bytes(data)
        if move:
            source.unlink()
        self._manifest["entries"].append(
            {
                "kind": kind,
                "label": label,
                "path": str(dest.relative_to(self.root)),
                "bytes": len(data),
                "metadata": metadata or {},
            }
        )
        self._flush()
        return dest

    # -- discovery -----------------------------------------------------------

    @property
    def entries(self) -> list[dict]:
        """Manifest entries (copies; mutate via the API only)."""
        return [dict(e) for e in self._manifest["entries"]]

    def kinds(self) -> list[str]:
        """Sorted distinct product kinds present."""
        return sorted({e["kind"] for e in self._manifest["entries"]})

    def find(self, kind: str | None = None, **metadata: object) -> list[dict]:
        """Entries matching a kind and/or exact metadata values."""
        out = []
        for e in self._manifest["entries"]:
            if kind is not None and e["kind"] != kind:
                continue
            if all(e["metadata"].get(k) == v for k, v in metadata.items()):
                out.append(dict(e))
        return out

    def path_of(self, kind: str, label: str) -> Path:
        """Absolute path of an archived file."""
        for e in self._manifest["entries"]:
            if e["kind"] == kind and e["label"] == label:
                return self.root / e["path"]
        raise ArchiveError(f"no archive entry {kind}/{label}")

    def total_bytes(self) -> int:
        """Total archived payload size."""
        return sum(e["bytes"] for e in self._manifest["entries"])
