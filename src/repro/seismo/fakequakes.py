"""End-to-end FakeQuakes facade and the three phase kernels.

:class:`FakeQuakes` bundles geometry, stations, distance matrices, the
rupture generator, GF computation and waveform synthesis behind one
object with exactly the three entry points the FDW phases call:

* :meth:`phase_a_distances` / :meth:`phase_a_ruptures` — Phase A,
* :meth:`phase_b_greens_functions` — Phase B,
* :meth:`phase_c_waveforms` — Phase C.

Running the phases back-to-back on one machine (what
:class:`repro.core.local.LocalRunner` does) reproduces MudPy's native
sequential behaviour; the FDW instead fans the A and C kernels out as
parallel jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError
from repro.rng import RngFactory
from repro.seismo.distance import DistanceMatrices
from repro.seismo.geometry import FaultGeometry, build_chile_slab
from repro.seismo.greens import GreensFunctionBank, compute_gf_bank
from repro.seismo.klcache import KLCache
from repro.seismo.ruptures import Rupture, RuptureGenerator
from repro.seismo.stations import StationNetwork, chilean_network
from repro.seismo.waveforms import GnssNoiseModel, WaveformSet, WaveformSynthesizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports seismo)
    from repro.core.gfcache import GFCache

__all__ = ["FakeQuakesParameters", "FakeQuakes"]


@dataclass(frozen=True)
class FakeQuakesParameters:
    """Simulation parameters (the FDW "configuration file" payload).

    Attributes
    ----------
    n_ruptures:
        Number of rupture scenarios / waveform sets to produce.
    n_stations:
        Station-list length: 121 = full Chilean input, 2 = small.
    mw_range:
        Target magnitude range for the catalog.
    mesh:
        (n_strike, n_dip) fault mesh dimensions.
    dt_s:
        GNSS sample interval.
    with_noise:
        Add the GNSS noise model to synthesized waveforms.
    gf_method:
        Static Green's function flavour: ``"point"`` (fast double-couple
        point source, the default) or ``"okada"`` (finite-fault Okada
        1985 — more accurate in the near field, ~n_subfaults times the
        cost).
    gf_dtype:
        GF-bank precision: ``"float64"`` (bit-exact default) or
        ``"float32"`` (half the bank bytes and faster synthesis, ~1e-7
        relative waveform error — see DESIGN.md).
    seed:
        Root RNG seed; everything downstream derives from it.
    """

    n_ruptures: int = 16
    n_stations: int = 121
    mw_range: tuple[float, float] = (7.5, 9.2)
    mesh: tuple[int, int] = (30, 15)
    dt_s: float = 1.0
    with_noise: bool = False
    gf_method: str = "point"
    gf_dtype: str = "float64"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_ruptures < 1:
            raise ConfigError(f"n_ruptures must be >= 1, got {self.n_ruptures}")
        if self.n_stations < 1:
            raise ConfigError(f"n_stations must be >= 1, got {self.n_stations}")
        if self.mesh[0] < 2 or self.mesh[1] < 2:
            raise ConfigError(f"mesh must be at least 2x2, got {self.mesh}")
        if self.mw_range[0] > self.mw_range[1]:
            raise ConfigError(f"invalid mw_range {self.mw_range}")
        if self.dt_s <= 0:
            raise ConfigError(f"dt_s must be positive, got {self.dt_s}")
        if self.gf_method not in ("point", "okada"):
            raise ConfigError(
                f"gf_method must be 'point' or 'okada', got {self.gf_method!r}"
            )
        if self.gf_dtype not in ("float64", "float32"):
            raise ConfigError(
                f"gf_dtype must be 'float64' or 'float32', got {self.gf_dtype!r}"
            )


@dataclass
class FakeQuakes:
    """FakeQuakes simulation session.

    Build one from parameters with :meth:`from_parameters`; the
    constructor takes explicit components for tests that substitute any
    piece.
    """

    params: FakeQuakesParameters
    geometry: FaultGeometry
    network: StationNetwork
    rngs: RngFactory = field(default_factory=RngFactory)
    gf_cache: "GFCache | None" = field(default=None, repr=False)
    kl_cache: KLCache | None = field(default=None, repr=False)
    _distances: DistanceMatrices | None = field(default=None, repr=False)
    _generator: RuptureGenerator | None = field(default=None, repr=False)
    _gf_bank: GreensFunctionBank | None = field(default=None, repr=False)

    @classmethod
    def from_parameters(
        cls,
        params: FakeQuakesParameters,
        gf_cache: "GFCache | None" = None,
        kl_cache: KLCache | None = None,
    ) -> "FakeQuakes":
        """Standard construction: Chilean slab + synthetic network.

        ``gf_cache`` routes Phase B through a shared
        :class:`~repro.core.gfcache.GFCache` so the bank is computed at
        most once per (geometry, network, model) content key;
        ``kl_cache`` does the same for Phase A's per-patch K-L bases
        (:class:`~repro.seismo.klcache.KLCache`).
        """
        geometry = build_chile_slab(n_strike=params.mesh[0], n_dip=params.mesh[1])
        network = chilean_network(params.n_stations)
        return cls(
            params=params,
            geometry=geometry,
            network=network,
            rngs=RngFactory(params.seed),
            gf_cache=gf_cache,
            kl_cache=kl_cache,
        )

    # -- Phase A -------------------------------------------------------------

    def phase_a_distances(
        self, recycled: DistanceMatrices | None = None
    ) -> DistanceMatrices:
        """Bootstrap step of Phase A: build or recycle the ``.npy`` pair.

        With ``recycled`` provided (the FDW's normal mode), the O(n^2)
        computation is skipped entirely — "recycling them is crucial".
        """
        if recycled is not None:
            self._distances = recycled
        elif self._distances is None:
            self._distances = DistanceMatrices.from_geometry(self.geometry)
        return self._distances

    def _ensure_generator(self) -> RuptureGenerator:
        if self._generator is None:
            self._generator = RuptureGenerator(
                self.geometry,
                distances=self.phase_a_distances(),
                mw_range=self.params.mw_range,
                kl_cache=self.kl_cache,
            )
        return self._generator

    def phase_a_ruptures(
        self, start_index: int = 0, count: int | None = None
    ) -> list[Rupture]:
        """Generate a chunk of rupture scenarios (one A-phase job).

        Chunks are independent and deterministic: job ``k`` derives its
        RNG from the chunk's start index, so any partition of the
        catalog into jobs yields the same ruptures.
        """
        count = self.params.n_ruptures if count is None else count
        if start_index < 0 or count < 0 or start_index + count > self.params.n_ruptures:
            raise ConfigError(
                f"chunk [{start_index}, {start_index + count}) outside catalog "
                f"of {self.params.n_ruptures}"
            )
        gen = self._ensure_generator()
        return [
            gen.generate(
                self.rngs.generator("rupture", start_index + i),
                rupture_id=f"{self.geometry.name}.{start_index + i:06d}",
            )
            for i in range(count)
        ]

    # -- Phase B -------------------------------------------------------------

    def phase_b_greens_functions(
        self, recycled: GreensFunctionBank | None = None
    ) -> GreensFunctionBank:
        """Compute (or recycle) the GF bank for the station list.

        The bank flavour follows ``params.gf_method`` (point source or
        finite-fault Okada). With a :attr:`gf_cache` configured, the
        computation routes through the content-addressed cache — a warm
        cache skips Phase B entirely, the in-process analog of pulling
        the ``.mseed`` archive from Stash/OSDF.
        """
        if recycled is not None:
            self._gf_bank = recycled
        elif self._gf_bank is None:
            if self.gf_cache is not None:
                self._gf_bank = self.gf_cache.get_or_compute(
                    self.geometry,
                    self.network,
                    gf_method=self.params.gf_method,
                    dtype=self.params.gf_dtype,
                )
            elif self.params.gf_method == "okada":
                from repro.seismo.okada import compute_okada_gf_bank

                self._gf_bank = compute_okada_gf_bank(
                    self.geometry, self.network, dtype=self.params.gf_dtype
                )
            else:
                self._gf_bank = compute_gf_bank(
                    self.geometry, self.network, dtype=self.params.gf_dtype
                )
        return self._gf_bank

    # -- Phase C -------------------------------------------------------------

    def phase_c_waveforms(
        self, ruptures: list[Rupture], duration_s: float | None = None
    ) -> list[WaveformSet]:
        """Synthesize waveforms for a chunk of ruptures (one C-phase job).

        The whole chunk goes through the batched kernel
        (:meth:`~repro.seismo.waveforms.WaveformSynthesizer.synthesize_batch`);
        products are bit-identical to per-rupture synthesis, each
        rupture keeping its own keyed noise stream.
        """
        bank = self.phase_b_greens_functions()
        noise = GnssNoiseModel() if self.params.with_noise else None
        synth = WaveformSynthesizer(
            bank, dt_s=self.params.dt_s, duration_s=duration_s, noise=noise
        )
        rngs = (
            [self.rngs.generator("noise", r.rupture_id) for r in ruptures]
            if self.params.with_noise
            else None
        )
        return synth.synthesize_batch(ruptures, rngs=rngs)

    # -- convenience ----------------------------------------------------------

    def run_sequential(self) -> list[WaveformSet]:
        """MudPy-native behaviour: all three phases, one after another."""
        self.phase_a_distances()
        ruptures = self.phase_a_ruptures()
        self.phase_b_greens_functions()
        return self.phase_c_waveforms(ruptures)

    def catalog_magnitudes(self, ruptures: list[Rupture]) -> np.ndarray:
        """Realized magnitudes of a catalog (for validation plots)."""
        return np.array([r.actual_mw for r in ruptures])
