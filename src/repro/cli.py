"""Command-line interface: the FDW's "edit a config, run a script" UX.

The paper describes the workflow's user experience as: place the source
in a home directory, edit a configuration file, and run a script
(§3). This module is that script::

    python -m repro.cli init fdw.cfg                 # write a template config
    python -m repro.cli run fdw.cfg                  # run on the simulated OSG
    python -m repro.cli run fdw.cfg --rescue-dir r/  # snapshot rescues on death
    python -m repro.cli recover fdw.cfg r/fdw.dag.rescue001   # rerun remainder
    python -m repro.cli run fdw.cfg --local          # single-machine control
    python -m repro.cli run fdw.cfg --local --archive-dir out/ --checkpoint
    python -m repro.cli run fdw.cfg --local --archive-dir out/ --resume
    python -m repro.cli run fdw.cfg --dagmans 4      # partitioned DAGMans
    python -m repro.cli trace fdw.cfg -o traces/     # export bursting CSVs
    python -m repro.cli burst traces/fdw_batch.csv traces/fdw_jobs.csv \
        --probe 10 --queue-min 90                    # bursting replay
    python -m repro.cli dagfile fdw.cfg -o dag/      # write .dag + submit files

All subcommands print the monitoring/report output the paper's tooling
produces and exit non-zero on failure.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="FakeQuakes DAGMan Workflow (FDW) tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser("init", help="write a template configuration file")
    p_init.add_argument("config", type=Path)
    p_init.add_argument("--waveforms", type=int, default=1024)
    p_init.add_argument("--stations", type=int, default=121)

    p_run = sub.add_parser("run", help="run the FDW")
    p_run.add_argument("config", type=Path)
    p_run.add_argument("--local", action="store_true", help="single-machine control")
    p_run.add_argument("--dagmans", type=int, default=1, help="concurrent DAGMans")
    p_run.add_argument("--seed", type=int, default=0, help="pool-side seed")
    p_run.add_argument(
        "--rescue-dir", type=Path, default=None,
        help="write rescue files here if a DAGMan dies (see 'recover')",
    )
    p_run.add_argument(
        "--archive-dir", type=Path, default=None,
        help="archive the products of a --local run here",
    )
    p_run.add_argument(
        "--checkpoint", action="store_true",
        help="with --local: keep a chunk-granular checkpoint in --archive-dir",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="with --local: resume a checkpointed run, skipping done chunks",
    )

    p_rec = sub.add_parser(
        "recover", help="resubmit a dead DAGMan from its rescue file"
    )
    p_rec.add_argument("config", type=Path)
    p_rec.add_argument("rescue_file", type=Path)
    p_rec.add_argument("--seed", type=int, default=0, help="pool-side seed")
    p_rec.add_argument(
        "--rescue-dir", type=Path, default=None,
        help="where to write a new rescue file if this attempt dies too",
    )

    p_trace = sub.add_parser("trace", help="run on OSG and export bursting CSVs")
    p_trace.add_argument("config", type=Path)
    p_trace.add_argument("-o", "--output", type=Path, default=Path("."))
    p_trace.add_argument("--seed", type=int, default=0)

    p_burst = sub.add_parser("burst", help="replay a trace under bursting policies")
    p_burst.add_argument("batch_csv", type=Path)
    p_burst.add_argument("jobs_csv", type=Path)
    p_burst.add_argument("--probe", type=float, default=10.0, help="Policy 1 probe (s)")
    p_burst.add_argument(
        "--threshold", type=float, default=34.0, help="Policy 1 threshold (JPM)"
    )
    p_burst.add_argument(
        "--queue-min", type=float, default=90.0, help="Policy 2 queue cap (minutes)"
    )
    p_burst.add_argument(
        "--max-burst-fraction", type=float, default=None, help="cap on bursted share"
    )
    p_burst.add_argument("--csv", type=Path, default=None, help="per-second output CSV")

    p_dag = sub.add_parser("dagfile", help="write the .dag and submit files")
    p_dag.add_argument("config", type=Path)
    p_dag.add_argument("-o", "--output", type=Path, default=Path("dag"))

    p_fig = sub.add_parser("figures", help="regenerate the paper-figure CSVs")
    p_fig.add_argument("-o", "--output", type=Path, default=Path("figures"))
    p_fig.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale in (0, 1]; 1.0 = paper scale",
    )
    return parser


def _cmd_init(args: argparse.Namespace) -> int:
    from repro.core.config import FdwConfig

    config = FdwConfig(
        n_waveforms=args.waveforms,
        n_stations=args.stations,
        name=args.config.stem,
    )
    path = config.write(args.config)
    print(f"wrote template configuration to {path}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.config import FdwConfig
    from repro.core.local import LocalRunner
    from repro.core.monitor import DagmanStats
    from repro.core.partition import partition_config
    from repro.core.submit_osg import run_fdw_batch
    from repro.units import format_duration

    config = FdwConfig.read(args.config)
    if args.local:
        result = LocalRunner().run(
            config,
            archive_dir=args.archive_dir,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
        print(
            f"local run: {result.n_waveform_sets} waveform sets in "
            f"{format_duration(result.total_seconds)}"
        )
        for phase, seconds in result.phase_seconds.items():
            print(f"  phase {phase}: {seconds:.2f}s")
        if args.resume:
            for phase in sorted(result.chunks_skipped):
                print(
                    f"  phase {phase} chunks: "
                    f"{result.chunks_skipped[phase]} resumed, "
                    f"{result.chunks_executed[phase]} executed"
                )
        return 0
    parts = partition_config(config, args.dagmans)
    batch = run_fdw_batch(parts, seed=args.seed, rescue_dir=args.rescue_dir)
    for name in batch.dagman_names:
        stats = DagmanStats.from_log_text(batch.user_logs[name])
        print(stats.report(name))
        print()
    if len(parts) > 1:
        print(
            f"batch makespan {format_duration(batch.batch_makespan_s())}, "
            f"aggregate throughput {batch.batch_throughput_jpm():.2f} jobs/min"
        )
    if batch.rescue_files:
        for name, path in sorted(batch.rescue_files.items()):
            print(f"DAGMan {name} failed; rescue file: {path}")
        print("resubmit the remainder with: repro recover <config> <rescue file>")
        return 1
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.condor.dagman import DagmanOptions
    from repro.condor.rescue import read_rescue_file
    from repro.core.config import FdwConfig
    from repro.core.monitor import DagmanStats
    from repro.core.workflow import build_fdw_dag
    from repro.osg.pool import resubmit_with_rescue

    config = FdwConfig.read(args.config)
    dag = build_fdw_dag(config)
    done = read_rescue_file(args.rescue_file)
    pool, run = resubmit_with_rescue(
        dag,
        args.rescue_file,
        options=DagmanOptions(max_idle=config.max_idle),
        name=config.name,
        seed=args.seed,
        rescue_dir=args.rescue_dir,
    )
    print(
        f"rescued {len(done)} completed node(s); "
        f"resubmitting the remaining {len(dag) - len(done)}"
    )
    pool.run()
    stats = DagmanStats.from_log_text(run.user_log.render())
    print(stats.report(config.name))
    if run.dead:
        print(f"DAGMan {config.name} failed again; rescue file: {run.rescue_file}")
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.config import FdwConfig
    from repro.core.submit_osg import run_fdw_batch
    from repro.core.traces import export_traces

    config = FdwConfig.read(args.config)
    result = run_fdw_batch(config, seed=args.seed)
    batch_csv, jobs_csv = export_traces(result, config.name, args.output)
    print(f"wrote {batch_csv}")
    print(f"wrote {jobs_csv}")
    return 0


def _cmd_burst(args: argparse.Namespace) -> int:
    from repro.bursting import (
        BurstingSimulator,
        LowThroughputPolicy,
        QueueTimePolicy,
        render_report,
        write_throughput_csv,
    )
    from repro.core.traces import read_traces
    from repro.units import minutes

    trace = read_traces(args.batch_csv, args.jobs_csv)
    sim = BurstingSimulator(
        trace,
        policies=[
            LowThroughputPolicy(probe_s=args.probe, threshold_jpm=args.threshold),
            QueueTimePolicy(max_queue_s=minutes(args.queue_min)),
        ],
        max_burst_fraction=args.max_burst_fraction,
    )
    result = sim.run()
    print(render_report(result))
    if args.csv is not None:
        path = write_throughput_csv(result, args.csv)
        print(f"per-second throughput written to {path}")
    return 0


def _cmd_dagfile(args: argparse.Namespace) -> int:
    from repro.core.config import FdwConfig
    from repro.core.workflow import build_fdw_dag

    config = FdwConfig.read(args.config)
    dag = build_fdw_dag(config)
    dag_path = dag.write(args.output)
    print(f"wrote {dag_path} and {len(dag)} submit files under {args.output}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.core.figures import export_all_figures

    paths = export_all_figures(args.output, scale=args.scale)
    for path in paths:
        print(f"wrote {path}")
    return 0


_COMMANDS = {
    "init": _cmd_init,
    "run": _cmd_run,
    "recover": _cmd_recover,
    "trace": _cmd_trace,
    "burst": _cmd_burst,
    "dagfile": _cmd_dagfile,
    "figures": _cmd_figures,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
