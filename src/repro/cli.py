"""Command-line interface: the FDW's "edit a config, run a script" UX.

The paper describes the workflow's user experience as: place the source
in a home directory, edit a configuration file, and run a script
(§3). This module is that script::

    python -m repro.cli init fdw.cfg                 # write a template config
    python -m repro.cli run fdw.cfg                  # run on the simulated OSG
    python -m repro.cli run fdw.cfg --rescue-dir r/  # snapshot rescues on death
    python -m repro.cli recover fdw.cfg r/fdw.dag.rescue001   # rerun remainder
    python -m repro.cli run fdw.cfg --local          # single-machine control
    python -m repro.cli run fdw.cfg --local --archive-dir out/ --checkpoint
    python -m repro.cli run fdw.cfg --local --archive-dir out/ --resume
    python -m repro.cli run fdw.cfg --dagmans 4      # partitioned DAGMans
    python -m repro.cli trace fdw.cfg -o traces/     # export bursting CSVs
    python -m repro.cli burst traces/fdw_batch.csv traces/fdw_jobs.csv \
        --probe 10 --queue-min 90                    # bursting replay
    python -m repro.cli dagfile fdw.cfg -o dag/      # write .dag + submit files
    python -m repro.cli wf export fdw.cfg -o run.json     # run -> WfFormat JSON
    python -m repro.cli wf import examples/fdw64_wfformat.json
    python -m repro.cli wf generate examples/fdw64_wfformat.json -n 500 -o gen.json
    python -m repro.cli wf replay gen.json --dagmans 4 --burst
    python -m repro.cli chaos --seed 7               # seeded chaos campaign
    python -m repro.cli serve --tenants 8 --submissions 64 --seed 7
    python -m repro.cli serve --backend pool --submissions 8   # real pool runs

All subcommands print the monitoring/report output the paper's tooling
produces and exit non-zero on failure.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="FakeQuakes DAGMan Workflow (FDW) tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser("init", help="write a template configuration file")
    p_init.add_argument("config", type=Path)
    p_init.add_argument("--waveforms", type=int, default=1024)
    p_init.add_argument("--stations", type=int, default=121)

    p_run = sub.add_parser("run", help="run the FDW")
    p_run.add_argument("config", type=Path)
    p_run.add_argument("--local", action="store_true", help="single-machine control")
    p_run.add_argument("--dagmans", type=int, default=1, help="concurrent DAGMans")
    p_run.add_argument("--seed", type=int, default=0, help="pool-side seed")
    p_run.add_argument(
        "--rescue-dir", type=Path, default=None,
        help="write rescue files here if a DAGMan dies (see 'recover')",
    )
    p_run.add_argument(
        "--archive-dir", type=Path, default=None,
        help="archive the products of a --local run here",
    )
    p_run.add_argument(
        "--checkpoint", action="store_true",
        help="with --local: keep a chunk-granular checkpoint in --archive-dir",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="with --local: resume a checkpointed run, skipping done chunks",
    )
    p_run.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="observe the run: write a Chrome trace_event JSON here plus a "
        "Prometheus metrics snapshot next to it (.prom)",
    )
    p_run.add_argument(
        "--gf-dtype", choices=("float64", "float32"), default=None,
        help="override the config's GF-bank precision; float32 halves bank "
        "bytes at ~1e-7 relative waveform error (banks are cache-keyed by "
        "dtype, so the two precisions never share an entry)",
    )

    p_rec = sub.add_parser(
        "recover", help="resubmit a dead DAGMan from its rescue file"
    )
    p_rec.add_argument("config", type=Path)
    p_rec.add_argument("rescue_file", type=Path)
    p_rec.add_argument("--seed", type=int, default=0, help="pool-side seed")
    p_rec.add_argument(
        "--rescue-dir", type=Path, default=None,
        help="where to write a new rescue file if this attempt dies too",
    )

    p_trace = sub.add_parser("trace", help="run on OSG and export bursting CSVs")
    p_trace.add_argument("config", type=Path)
    p_trace.add_argument("-o", "--output", type=Path, default=Path("."))
    p_trace.add_argument("--seed", type=int, default=0)

    p_burst = sub.add_parser("burst", help="replay a trace under bursting policies")
    p_burst.add_argument("batch_csv", type=Path)
    p_burst.add_argument("jobs_csv", type=Path)
    p_burst.add_argument("--probe", type=float, default=10.0, help="Policy 1 probe (s)")
    p_burst.add_argument(
        "--threshold", type=float, default=34.0, help="Policy 1 threshold (JPM)"
    )
    p_burst.add_argument(
        "--queue-min", type=float, default=90.0, help="Policy 2 queue cap (minutes)"
    )
    p_burst.add_argument(
        "--max-burst-fraction", type=float, default=None, help="cap on bursted share"
    )
    p_burst.add_argument("--csv", type=Path, default=None, help="per-second output CSV")

    p_dag = sub.add_parser("dagfile", help="write the .dag and submit files")
    p_dag.add_argument("config", type=Path)
    p_dag.add_argument("-o", "--output", type=Path, default=Path("dag"))

    p_wf = sub.add_parser(
        "wf", help="WfFormat (WfCommons) workflow interchange"
    )
    wf_sub = p_wf.add_subparsers(dest="wf_command", required=True)

    p_wfe = wf_sub.add_parser(
        "export", help="run the FDW on the simulated OSG and export WfFormat JSON"
    )
    p_wfe.add_argument("config", type=Path)
    p_wfe.add_argument("-o", "--output", type=Path, default=Path("instance.json"))
    p_wfe.add_argument("--seed", type=int, default=0, help="pool-side seed")

    p_wfi = wf_sub.add_parser(
        "import",
        help="validate a WfFormat instance (e.g. examples/fdw64_wfformat.json) "
        "and summarize the imported DAG",
    )
    p_wfi.add_argument("instance", type=Path)
    p_wfi.add_argument(
        "--reexport", type=Path, default=None,
        help="re-serialize the imported instance here (round-trip check: the "
        "output is byte-identical to a repro-exported input)",
    )

    p_wfg = wf_sub.add_parser(
        "generate", help="WfChef-style synthetic scale-up of an instance"
    )
    p_wfg.add_argument("instance", type=Path)
    p_wfg.add_argument("-n", "--tasks", type=int, required=True, help="target task count")
    p_wfg.add_argument("--seed", type=int, default=0)
    p_wfg.add_argument("-o", "--output", type=Path, default=Path("generated.json"))

    p_wfr = wf_sub.add_parser(
        "replay", help="replay an instance through the OSPool simulator"
    )
    p_wfr.add_argument("instance", type=Path)
    p_wfr.add_argument(
        "--dagmans", type=int, default=1,
        help="concurrent DAGMans (the paper's 1/2/4/8 partitioning study)",
    )
    p_wfr.add_argument(
        "--runtime", choices=("trace", "model"), default="trace",
        help="'trace' replays recorded runtimes; 'model' uses the calibrated "
        "stochastic model (bit-identical FDW round trip at the same seed)",
    )
    p_wfr.add_argument("--seed", type=int, default=0, help="pool-side seed")
    p_wfr.add_argument("--stagger", type=float, default=0.0, help="DAGMan stagger (s)")
    p_wfr.add_argument(
        "--burst", action="store_true",
        help="also run bursting Policies 1-3 over each replayed DAGMan",
    )
    p_wfr.add_argument(
        "--trace-dir", type=Path, default=None,
        help="write each DAGMan's batch/jobs bursting CSVs here",
    )
    p_wfr.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="observe the replay: write a Chrome trace_event JSON here plus "
        "a Prometheus metrics snapshot next to it (.prom); the simulator's "
        "virtual timestamps make the trace byte-identical per seed",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign (corruption, flakes, transfer "
        "faults, a site outage) and assert the archive is bit-identical "
        "to a fault-free run",
    )
    p_chaos.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_chaos.add_argument(
        "--workdir", type=Path, default=None,
        help="campaign working directory (default: a temp dir, removed on "
        "success; quarantined artifacts survive in a kept workdir)",
    )
    p_chaos.add_argument(
        "--transfer-failure-prob", type=float, default=0.15,
        help="per-attempt Stash transfer failure probability",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run a seeded multi-tenant portal-service session (fair share, "
        "coalescing, quota/backpressure) and print its report",
    )
    p_serve.add_argument("--tenants", type=int, default=8, help="simulated tenants")
    p_serve.add_argument(
        "--submissions", type=int, default=64, help="total submissions across tenants"
    )
    p_serve.add_argument(
        "--distinct", type=int, default=6,
        help="distinct scenarios the submissions draw from (repeats coalesce)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4, help="concurrent executions (virtual)"
    )
    p_serve.add_argument("--seed", type=int, default=0, help="session seed")
    p_serve.add_argument(
        "--waveforms", type=int, default=16, help="waveforms per scenario"
    )
    p_serve.add_argument(
        "--backend", choices=("sim", "pool", "burst", "local"), default="sim",
        help="execution backend behind the service (default: virtual-cost sim; "
        "'pool'/'burst'/'local' run the real simulators per distinct scenario)",
    )
    p_serve.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="observe the session: write a Chrome trace_event JSON here — one "
        "merged per-tenant timeline from the service's queue trace — plus a "
        "Prometheus metrics snapshot next to it (.prom)",
    )

    p_obs = sub.add_parser("obs", help="observability tooling")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_sum = obs_sub.add_parser(
        "summary",
        help="render a terminal digest of an exported trace and/or metrics "
        "snapshot (spans, markers, counters, histogram shapes)",
    )
    p_obs_sum.add_argument(
        "trace_json", type=Path, nargs="?", default=None,
        help="Chrome trace JSON written by a --trace run",
    )
    p_obs_sum.add_argument(
        "--metrics", type=Path, default=None,
        help="Prometheus text snapshot (defaults to the trace's .prom sibling "
        "when that file exists)",
    )

    p_fig = sub.add_parser("figures", help="regenerate the paper-figure CSVs")
    p_fig.add_argument("-o", "--output", type=Path, default=Path("figures"))
    p_fig.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale in (0, 1]; 1.0 = paper scale",
    )
    return parser


def _cmd_init(args: argparse.Namespace) -> int:
    from repro.core.config import FdwConfig

    config = FdwConfig(
        n_waveforms=args.waveforms,
        n_stations=args.stations,
        name=args.config.stem,
    )
    path = config.write(args.config)
    print(f"wrote template configuration to {path}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.config import FdwConfig
    from repro.core.local import LocalRunner
    from repro.core.monitor import DagmanStats
    from repro.core.partition import partition_config
    from repro.core.submit_osg import run_fdw_batch
    from repro.units import format_duration

    config = FdwConfig.read(args.config)
    if args.gf_dtype is not None:
        from dataclasses import replace

        config = replace(config, gf_dtype=args.gf_dtype)
    if args.local:
        result = LocalRunner().run(
            config,
            archive_dir=args.archive_dir,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
        print(
            f"local run: {result.n_waveform_sets} waveform sets in "
            f"{format_duration(result.total_seconds)}"
        )
        for phase, seconds in result.phase_seconds.items():
            print(f"  phase {phase}: {seconds:.2f}s")
        if args.resume:
            for phase in sorted(result.chunks_skipped):
                print(
                    f"  phase {phase} chunks: "
                    f"{result.chunks_skipped[phase]} resumed, "
                    f"{result.chunks_executed[phase]} executed"
                )
        return 0
    parts = partition_config(config, args.dagmans)
    batch = run_fdw_batch(parts, seed=args.seed, rescue_dir=args.rescue_dir)
    for name in batch.dagman_names:
        stats = DagmanStats.from_log_text(batch.user_logs[name])
        print(stats.report(name))
        print()
    if len(parts) > 1:
        print(
            f"batch makespan {format_duration(batch.batch_makespan_s())}, "
            f"aggregate throughput {batch.batch_throughput_jpm():.2f} jobs/min"
        )
    if batch.rescue_files:
        for name, path in sorted(batch.rescue_files.items()):
            print(f"DAGMan {name} failed; rescue file: {path}")
        print("resubmit the remainder with: repro recover <config> <rescue file>")
        return 1
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.condor.dagman import DagmanOptions
    from repro.condor.rescue import read_rescue_file
    from repro.core.config import FdwConfig
    from repro.core.monitor import DagmanStats
    from repro.core.workflow import build_fdw_dag
    from repro.osg.pool import resubmit_with_rescue

    config = FdwConfig.read(args.config)
    dag = build_fdw_dag(config)
    done = read_rescue_file(args.rescue_file)
    pool, run = resubmit_with_rescue(
        dag,
        args.rescue_file,
        options=DagmanOptions(max_idle=config.max_idle),
        name=config.name,
        seed=args.seed,
        rescue_dir=args.rescue_dir,
    )
    print(
        f"rescued {len(done)} completed node(s); "
        f"resubmitting the remaining {len(dag) - len(done)}"
    )
    pool.run()
    stats = DagmanStats.from_log_text(run.user_log.render())
    print(stats.report(config.name))
    if run.dead:
        print(f"DAGMan {config.name} failed again; rescue file: {run.rescue_file}")
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.config import FdwConfig
    from repro.core.submit_osg import run_fdw_batch
    from repro.core.traces import export_traces

    config = FdwConfig.read(args.config)
    result = run_fdw_batch(config, seed=args.seed)
    batch_csv, jobs_csv = export_traces(result, config.name, args.output)
    print(f"wrote {batch_csv}")
    print(f"wrote {jobs_csv}")
    return 0


def _cmd_burst(args: argparse.Namespace) -> int:
    from repro.bursting import (
        BurstingSimulator,
        LowThroughputPolicy,
        QueueTimePolicy,
        render_report,
        write_throughput_csv,
    )
    from repro.core.traces import read_traces
    from repro.units import minutes

    trace = read_traces(args.batch_csv, args.jobs_csv)
    sim = BurstingSimulator(
        trace,
        policies=[
            LowThroughputPolicy(probe_s=args.probe, threshold_jpm=args.threshold),
            QueueTimePolicy(max_queue_s=minutes(args.queue_min)),
        ],
        max_burst_fraction=args.max_burst_fraction,
    )
    result = sim.run()
    print(render_report(result))
    if args.csv is not None:
        path = write_throughput_csv(result, args.csv)
        print(f"per-second throughput written to {path}")
    return 0


def _cmd_dagfile(args: argparse.Namespace) -> int:
    from repro.core.config import FdwConfig
    from repro.core.workflow import build_fdw_dag

    config = FdwConfig.read(args.config)
    dag = build_fdw_dag(config)
    dag_path = dag.write(args.output)
    print(f"wrote {dag_path} and {len(dag)} submit files under {args.output}")
    return 0


def _cmd_wf_export(args: argparse.Namespace) -> int:
    from repro.core.config import FdwConfig
    from repro.core.submit_osg import run_fdw_batch
    from repro.core.workflow import build_fdw_dag
    from repro.wf import dump_instance, export_fdw_run

    config = FdwConfig.read(args.config)
    result = run_fdw_batch(config, seed=args.seed)
    dag = build_fdw_dag(config)
    instance = export_fdw_run(
        dag,
        result.metrics,
        attributes={"maxIdle": config.max_idle, "poolSeed": args.seed},
    )
    path = dump_instance(instance, args.output)
    print(
        f"wrote {path}: {instance.n_tasks} tasks, {instance.n_edges()} edges, "
        f"makespan {instance.makespan_s:.1f}s"
    )
    return 0


def _cmd_wf_import(args: argparse.Namespace) -> int:
    from repro.wf import dump_instance, import_instance

    wf = import_instance(args.instance)
    instance = wf.instance
    counts = {
        cat: sum(1 for t in instance.tasks if t.category == cat)
        for cat in instance.categories()
    }
    categories = ", ".join(f"{cat}x{n}" for cat, n in counts.items())
    depth = max(instance.levels().values()) + 1 if instance.tasks else 0
    print(
        f"{instance.name}: {wf.n_tasks} tasks, {instance.n_edges()} edges, "
        f"{depth} level(s), {len(wf.files_mb)} files"
    )
    print(f"categories: {categories}")
    if args.reexport is not None:
        path = dump_instance(instance, args.reexport)
        print(f"re-exported to {path}")
    return 0


def _cmd_wf_generate(args: argparse.Namespace) -> int:
    from repro.wf import dump_instance, generate_instance, load_instance

    source = load_instance(args.instance)
    instance = generate_instance(source, args.tasks, args.seed)
    path = dump_instance(instance, args.output)
    print(
        f"wrote {path}: {instance.n_tasks} tasks, {instance.n_edges()} edges "
        f"(generated from {source.name!r}, seed {args.seed})"
    )
    return 0


def _cmd_wf_replay(args: argparse.Namespace) -> int:
    from repro.bursting import render_report
    from repro.core.traces import render_trace_csvs
    from repro.units import format_duration
    from repro.wf import metrics_to_batch_trace, replay_bursting, replay_instance

    result = replay_instance(
        args.instance,
        n_dagmans=args.dagmans,
        seed=args.seed,
        runtime=args.runtime,
        stagger_s=args.stagger,
    )
    for name in result.dagman_names:
        summary = result.metrics.dagmans[name]
        print(
            f"{name}: {summary.n_jobs} jobs in "
            f"{format_duration(summary.runtime_s)} "
            f"({summary.throughput_jpm:.2f} jobs/min)"
        )
    print(
        f"replay makespan {format_duration(result.makespan_s)} "
        f"({result.n_dagmans} DAGMan(s), runtime mode {result.runtime_mode!r})"
    )
    if args.trace_dir is not None:
        args.trace_dir.mkdir(parents=True, exist_ok=True)
        for name in result.dagman_names:
            trace = metrics_to_batch_trace(result.metrics, name)
            batch_text, jobs_text = render_trace_csvs(trace)
            batch_csv = args.trace_dir / f"{name}_batch.csv"
            jobs_csv = args.trace_dir / f"{name}_jobs.csv"
            batch_csv.write_text(batch_text)
            jobs_csv.write_text(jobs_text)
            print(f"wrote {batch_csv} and {jobs_csv}")
    if args.burst:
        for name, burst in replay_bursting(result).items():
            print()
            print(render_report(burst))
    return 0


def _cmd_wf(args: argparse.Namespace) -> int:
    return _WF_COMMANDS[args.wf_command](args)


_WF_COMMANDS = {
    "export": _cmd_wf_export,
    "import": _cmd_wf_import,
    "generate": _cmd_wf_generate,
    "replay": _cmd_wf_replay,
}


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.chaos import ChaosConfig, run_chaos_campaign

    chaos = ChaosConfig(
        seed=args.seed, transfer_failure_prob=args.transfer_failure_prob
    )
    if args.workdir is not None:
        report = run_chaos_campaign(args.workdir, chaos=chaos)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            report = run_chaos_campaign(Path(tmp) / "campaign", chaos=chaos)
    print(report.summary())
    return 0 if report.bit_identical else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        BurstingRunner,
        LocalBackend,
        PoolRunner,
        SimulatedRunner,
        run_service_demo,
    )

    runners = {
        "sim": SimulatedRunner,
        "pool": PoolRunner,
        "burst": BurstingRunner,
        "local": LocalBackend,
    }
    report = run_service_demo(
        n_tenants=args.tenants,
        n_submissions=args.submissions,
        n_distinct=args.distinct,
        seed=args.seed,
        n_workers=args.workers,
        n_waveforms=args.waveforms,
        runner=runners[args.backend](),
    )
    from repro import obs

    if obs.enabled():
        # Convert the service's audit trace into the merged per-tenant
        # timeline (the service emits only metrics live; see
        # repro.obs.export.service_timeline).
        from repro.obs.export import service_timeline

        service_timeline(
            report.trace, report.results, tracer=obs.session().tracer
        )
    print(report.summary())
    return 0


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import render_summary

    trace_doc = None
    if args.trace_json is not None:
        trace_doc = json.loads(args.trace_json.read_text())
    metrics_path = args.metrics
    if metrics_path is None and args.trace_json is not None:
        sibling = args.trace_json.with_suffix(".prom")
        if sibling.exists():
            metrics_path = sibling
    metrics_text = (
        metrics_path.read_text() if metrics_path is not None else None
    )
    print(render_summary(trace_doc, metrics_text), end="")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    return {"summary": _cmd_obs_summary}[args.obs_command](args)


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.core.figures import export_all_figures

    paths = export_all_figures(args.output, scale=args.scale)
    for path in paths:
        print(f"wrote {path}")
    return 0


_COMMANDS = {
    "init": _cmd_init,
    "run": _cmd_run,
    "recover": _cmd_recover,
    "trace": _cmd_trace,
    "burst": _cmd_burst,
    "dagfile": _cmd_dagfile,
    "wf": _cmd_wf,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
    "figures": _cmd_figures,
}


def _run_observed(args: argparse.Namespace, trace_path: Path) -> int:
    """Run one command under an observation session and export it."""
    from repro import obs
    from repro.obs.export import dump_chrome_trace, prometheus_text

    with obs.observe() as session:
        code = _COMMANDS[args.command](args)
    trace_path.parent.mkdir(parents=True, exist_ok=True)
    trace_path.write_text(dump_chrome_trace(session.tracer))
    prom_path = trace_path.with_suffix(".prom")
    prom_path.write_text(prometheus_text(session.registry))
    print(f"wrote trace {trace_path} and metrics {prom_path}")
    return code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        trace_path = getattr(args, "trace", None)
        if trace_path is not None:
            return _run_observed(args, trace_path)
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
