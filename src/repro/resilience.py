"""Retry/backoff and circuit breakers for flaky federated infrastructure.

The OSPool/OSDF substrate the paper targets fails *routinely*: transfers
glitch, execute points vanish mid-job, cache sites go dark for hours.
Production gateways (VERCE's seismology portal is the canonical example)
survive by layering two mechanisms, both reproduced here in a fully
deterministic form:

* :class:`RetryPolicy` / :func:`retry_call` — bounded exponential
  backoff with **decorrelated jitter** (each delay is drawn uniformly
  from ``[base, 3 * previous]``, capped), seeded through the package's
  :class:`~repro.rng.RngFactory` so a given ``(seed, key path)`` always
  produces the identical retry schedule. Only errors whose
  :attr:`~repro.errors.ReproError.retryable` flag is set are retried;
  programming errors propagate on the first attempt.
* :class:`CircuitBreaker` — a per-resource (site, service) state machine
  that opens after N consecutive failures, rejects calls fast while
  open (:class:`~repro.errors.CircuitOpenError`), and probes recovery
  through a half-open trial call after a cooldown. Time is injected by
  the caller (simulation clock or wall clock), never read from the
  environment, keeping campaigns replayable.

Nothing in this module sleeps by default: delays are *returned and
accounted*, which is what the simulators need (they advance their own
clocks) and what keeps the test suite fast. Pass ``sleep=time.sleep``
for real wall-clock backoff.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import CircuitOpenError, ReproError, SimulationError
from repro.rng import RngFactory

__all__ = [
    "RetryPolicy",
    "RetryOutcome",
    "retry_call",
    "is_retryable",
    "BreakerPolicy",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]


def is_retryable(exc: BaseException) -> bool:
    """Whether the backoff wrapper should re-attempt after this error.

    Library errors carry their own classification
    (:attr:`~repro.errors.ReproError.retryable`); anything else —
    ``KeyError``, ``ZeroDivisionError`` — is a programming error and is
    never retried.
    """
    return isinstance(exc, ReproError) and bool(exc.retryable)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with decorrelated jitter.

    Attributes
    ----------
    max_attempts:
        Total attempts (first try + retries).
    base_delay_s:
        Lower bound of every backoff delay; also the first draw's floor.
    max_delay_s:
        Cap on any single delay.
    jitter:
        ``True`` (default) draws each delay uniformly from
        ``[base, 3 * previous]`` (AWS-style decorrelated jitter — spreads
        a thundering herd without the full-jitter's long idle tails);
        ``False`` doubles deterministically (``base * 2^n``), useful when
        a test wants a schedule independent of any RNG.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.5
    max_delay_s: float = 30.0
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0:
            raise SimulationError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.max_delay_s < self.base_delay_s:
            raise SimulationError(
                f"max_delay_s ({self.max_delay_s}) must be >= base_delay_s "
                f"({self.base_delay_s})"
            )

    def delays(self, rng: np.random.Generator | None = None) -> list[float]:
        """The full backoff schedule: one delay per possible retry.

        Deterministic for a given generator state — two generators
        seeded identically yield identical schedules (the property the
        chaos campaigns and the hypothesis suite pin).
        """
        out: list[float] = []
        prev = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            if self.jitter:
                if rng is None:
                    raise SimulationError(
                        "jittered RetryPolicy.delays needs a Generator; "
                        "pass rng= or use schedule(seed, ...)"
                    )
                hi = max(self.base_delay_s, prev * 3.0)
                delay = float(rng.uniform(self.base_delay_s, hi))
            else:
                delay = self.base_delay_s * (2.0 ** len(out))
            delay = min(delay, self.max_delay_s)
            out.append(delay)
            prev = delay
        return out

    def schedule(self, seed: int, *keys: str | int) -> list[float]:
        """Seed-derived schedule for a stable key path.

        ``schedule(seed, "transfer", job_id)`` is reproducible across
        processes and runs — the deterministic handle every subsystem
        uses instead of wall-clock randomness.
        """
        return self.delays(RngFactory(seed).generator("retry", *keys))


@dataclass
class RetryOutcome:
    """Result and accounting of one :func:`retry_call`.

    ``delays`` holds the backoff actually incurred (empty on first-try
    success); simulators fold ``total_delay_s`` into their clocks.
    """

    value: object
    attempts: int
    delays: list[float] = field(default_factory=list)

    @property
    def total_delay_s(self) -> float:
        """Backoff seconds the retries cost."""
        return float(sum(self.delays))


def retry_call(
    fn: Callable[[], object],
    policy: RetryPolicy | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    keys: tuple[str | int, ...] = (),
    classify: Callable[[BaseException], bool] = is_retryable,
    sleep: Callable[[float], None] | None = None,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> RetryOutcome:
    """Call ``fn`` under a retry policy; return value plus accounting.

    Parameters
    ----------
    fn:
        Zero-argument callable (close over the real arguments).
    policy:
        Backoff parameters; default :class:`RetryPolicy()`.
    rng, seed, keys:
        Jitter source: pass an explicit generator, or a ``seed`` plus a
        stable ``keys`` path (→ :meth:`RetryPolicy.schedule` semantics).
        One of the two is required for a jittered policy.
    classify:
        Predicate deciding whether an exception is worth retrying
        (default: the :attr:`~repro.errors.ReproError.retryable` flag).
    sleep:
        Called with each backoff delay; ``None`` (default) records the
        delay without sleeping — simulation time, not wall time.
    on_retry:
        Observer hook ``(attempt_number, exception, delay_s)`` fired
        before each retry.

    Raises the last exception when attempts are exhausted, and the first
    exception immediately when ``classify`` rejects it.
    """
    policy = policy or RetryPolicy()
    if policy.jitter and rng is None:
        if seed is None:
            raise SimulationError(
                "retry_call with a jittered policy needs rng= or seed="
            )
        rng = RngFactory(seed).generator("retry", *keys)
    plan = policy.delays(rng)
    delays: list[float] = []
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return RetryOutcome(value=fn(), attempts=attempt, delays=delays)
        except BaseException as exc:  # noqa: BLE001 - reclassified below
            if attempt >= policy.max_attempts or not classify(exc):
                raise
            delay = plan[attempt - 1]
            delays.append(delay)
            if obs.enabled():
                obs.counter_add(
                    "repro_retry_attempts_total", 1,
                    {"error": type(exc).__name__},
                )
                obs.counter_add("repro_retry_backoff_seconds_total", delay)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if sleep is not None:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


# -- circuit breakers ---------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Parameters of a per-resource circuit breaker.

    Attributes
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown_s:
        Seconds an open breaker rejects calls before allowing one
        half-open probe.
    probe_cost_s:
        Accounting charge for a failed attempt against a resource
        (connection timeout before the caller fails over) — what the
        storage layer adds to a retrieval that had to skip a dead site.
    """

    failure_threshold: int = 3
    cooldown_s: float = 600.0
    probe_cost_s: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise SimulationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise SimulationError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.probe_cost_s < 0:
            raise SimulationError(
                f"probe_cost_s must be >= 0, got {self.probe_cost_s}"
            )


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one resource.

    Time is always injected (``now`` parameters) so the breaker works
    identically under a simulation clock and a wall clock, and campaigns
    replay deterministically.

    State machine:

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures (successes reset the count) trip it open.
    * **open** — :meth:`allow` rejects until ``cooldown_s`` has elapsed
      since the trip, then admits exactly one probe (→ half-open).
    * **half-open** — the probe's outcome decides: success closes the
      breaker, failure re-opens it (restarting the cooldown). Further
      calls while the probe is outstanding are rejected.
    """

    def __init__(self, name: str, policy: BreakerPolicy | None = None) -> None:
        self.name = name
        self.policy = policy or BreakerPolicy()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.n_opens = 0
        self.n_rejected = 0

    @property
    def state(self) -> str:
        """Current state name (``closed`` / ``open`` / ``half-open``)."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (closed-state trip counter)."""
        return self._consecutive_failures

    def would_allow(self, now: float) -> bool:
        """Non-mutating :meth:`allow`: no transition, no rejection count.

        What health *queries* (prefetch site selection, reports) use —
        only a real call attempt should move the state machine.
        """
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_OPEN:
            return now - self._opened_at >= self.policy.cooldown_s
        return False  # half-open: a probe is already in flight

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at time ``now``.

        An open breaker past its cooldown transitions to half-open and
        admits the caller as the probe; rejected calls are counted.
        """
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_OPEN:
            if now - self._opened_at >= self.policy.cooldown_s:
                self._state = BREAKER_HALF_OPEN
                self._observe_transition(BREAKER_HALF_OPEN, now)
                return True
            self.n_rejected += 1
            obs.counter_add(
                "repro_breaker_rejections_total", 1, {"breaker": self.name}
            )
            return False
        # half-open: one probe is already in flight
        self.n_rejected += 1
        obs.counter_add(
            "repro_breaker_rejections_total", 1, {"breaker": self.name}
        )
        return False

    def record_success(self) -> None:
        """Report a successful call (closes a half-open breaker)."""
        if self._state != BREAKER_CLOSED:
            self._observe_transition(BREAKER_CLOSED, None)
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """Report a failed call at time ``now`` (may trip the breaker)."""
        self._consecutive_failures += 1
        if self._state == BREAKER_HALF_OPEN or (
            self._state == BREAKER_CLOSED
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._state = BREAKER_OPEN
            self._opened_at = now
            self.n_opens += 1
            self._observe_transition(BREAKER_OPEN, now)

    def _observe_transition(self, to: str, now: float | None) -> None:
        """Emit one state transition (counter + trace marker)."""
        if not obs.enabled():
            return
        obs.counter_add(
            "repro_breaker_transitions_total", 1,
            {"breaker": self.name, "to": to},
        )
        # The open/half-open edges carry the injected clock; closing via
        # record_success has no timestamp, so it stays counter-only.
        if now is not None:
            obs.instant(
                f"breaker:{self.name}:{to}", ts=now, category="resilience",
                track="breakers",
            )

    def call(self, fn: Callable[[], object], now: float) -> object:
        """Guarded invocation: reject fast when open, else record the
        outcome. Raises :class:`~repro.errors.CircuitOpenError` on
        rejection."""
        if not self.allow(now):
            raise CircuitOpenError(
                f"circuit breaker {self.name!r} is {self._state} "
                f"(opened at t={self._opened_at:.0f}s, "
                f"cooldown {self.policy.cooldown_s:.0f}s)"
            )
        try:
            result = fn()
        except BaseException:
            self.record_failure(now)
            raise
        self.record_success()
        return result

    def snapshot(self, now: float | None = None) -> dict:
        """Reportable state for campaign summaries."""
        out = {
            "name": self.name,
            "state": self._state,
            "consecutive_failures": self._consecutive_failures,
            "n_opens": self.n_opens,
            "n_rejected": self.n_rejected,
        }
        if now is not None and self._state == BREAKER_OPEN:
            remaining = self.policy.cooldown_s - (now - self._opened_at)
            out["cooldown_remaining_s"] = max(0.0, remaining)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker({self.name!r}, state={self._state!r}, "
            f"failures={self._consecutive_failures})"
        )
