"""EEW train/test evaluation on a synthetic catalog.

The Lin et al. (2021) pattern the paper cites: train a magnitude model
on FakeQuakes synthetics, evaluate on held-out events. Here the model is
the PGD scaling estimator; the harness

1. splits a catalog of (rupture, waveform set) products,
2. fits the scaling law on the training events,
3. produces evolving estimates for each test event,
4. reports final-error and time-to-convergence statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WaveformError
from repro.eew.magnitude import PgdMagnitudeEstimator
from repro.seismo.fakequakes import FakeQuakes
from repro.seismo.ruptures import Rupture
from repro.seismo.validation import pgd_regression
from repro.seismo.waveforms import WaveformSet

__all__ = ["EewEvaluation", "train_test_evaluate"]


@dataclass(frozen=True)
class EewEvaluation:
    """Per-event and aggregate test results."""

    true_mw: np.ndarray
    predicted_mw: np.ndarray
    convergence_s: np.ndarray
    coefficients: tuple[float, float, float]

    @property
    def n_events(self) -> int:
        """Test-set size."""
        return self.true_mw.shape[0]

    @property
    def mean_absolute_error(self) -> float:
        """Mean |Mw_pred - Mw_true| over events with finite predictions."""
        err = np.abs(self.predicted_mw - self.true_mw)
        finite = np.isfinite(err)
        if not np.any(finite):
            return float("nan")
        return float(np.mean(err[finite]))

    @property
    def bias(self) -> float:
        """Mean signed error (positive = overestimation)."""
        err = self.predicted_mw - self.true_mw
        finite = np.isfinite(err)
        if not np.any(finite):
            return float("nan")
        return float(np.mean(err[finite]))

    @property
    def median_convergence_s(self) -> float:
        """Median time-to-stable-estimate over converging events."""
        finite = np.isfinite(self.convergence_s)
        if not np.any(finite):
            return float("inf")
        return float(np.median(self.convergence_s[finite]))

    def report(self) -> str:
        """Human-readable evaluation summary."""
        a, b, c = self.coefficients
        lines = [
            "=== EEW magnitude evaluation ===",
            f"scaling fit: log10 PGD = {a:.2f} + {b:.2f}*Mw "
            f"{c:+.2f}*Mw*log10(R)",
            f"test events: {self.n_events}",
            f"mean |error|: {self.mean_absolute_error:.3f} Mw units "
            f"(bias {self.bias:+.3f})",
            f"median time to +/-0.3 Mw: {self.median_convergence_s:.0f} s",
        ]
        return "\n".join(lines)


def train_test_evaluate(
    session: FakeQuakes,
    ruptures: list[Rupture],
    waveform_sets: list[WaveformSet],
    train_fraction: float = 0.7,
    tolerance: float = 0.3,
) -> EewEvaluation:
    """Split, fit, and evaluate on one catalog.

    Parameters
    ----------
    session:
        The FakeQuakes session that produced the catalog (provides the
        geometry and network).
    ruptures, waveform_sets:
        Parallel product lists.
    train_fraction:
        Leading fraction used to fit the scaling law.
    tolerance:
        Convergence band for the time-to-stable-estimate metric.

    Raises
    ------
    WaveformError
        On mismatched lists or degenerate splits.
    """
    if len(ruptures) != len(waveform_sets):
        raise WaveformError(
            f"{len(ruptures)} ruptures vs {len(waveform_sets)} waveform sets"
        )
    if not (0.0 < train_fraction < 1.0):
        raise WaveformError(f"train_fraction must be in (0,1), got {train_fraction}")
    n_train = int(round(train_fraction * len(ruptures)))
    if n_train < 2 or n_train >= len(ruptures):
        raise WaveformError(
            f"split of {len(ruptures)} events at {train_fraction} leaves no "
            "usable train/test sets"
        )

    fit = pgd_regression(
        waveform_sets[:n_train],
        ruptures[:n_train],
        session.geometry,
        session.network,
        min_pgd_m=1e-4,
    )
    estimator = PgdMagnitudeEstimator.from_fit(fit, min_pgd_m=1e-3)

    true_mw, predicted, convergence = [], [], []
    for rupture, ws in zip(ruptures[n_train:], waveform_sets[n_train:]):
        evolving = estimator.evolving_estimate(
            ws, rupture, session.geometry, session.network
        )
        final = evolving[np.isfinite(evolving)]
        predicted.append(float(final[-1]) if final.size else float("nan"))
        true_mw.append(rupture.actual_mw)
        convergence.append(
            estimator.time_to_within(evolving, rupture.actual_mw, tolerance, ws.dt_s)
        )
    return EewEvaluation(
        true_mw=np.asarray(true_mw),
        predicted_mw=np.asarray(predicted),
        convergence_s=np.asarray(convergence),
        coefficients=(fit.a, fit.b, fit.c),
    )
