"""Earthquake early warning on FDW products.

The paper's motivation: FakeQuakes synthetics "have proven valuable in
training artificial intelligence (AI)-based earthquake early warning
(EEW) models to identify large earthquake magnitudes" (Lin et al. 2021).
This subpackage closes that loop on our own products:

* :mod:`repro.eew.features` — evolving peak-ground-displacement (PGD)
  features extracted from waveform sets,
* :mod:`repro.eew.magnitude` — a real EEW algorithm: PGD scaling-law
  magnitude estimation (Melgar et al. 2015; operationally used by
  G-larmS/GFAST-class systems and validated for GNSS EEW by Ruhl et
  al. 2017),
* :mod:`repro.eew.evaluate` — the train/test harness: fit the scaling
  law on a training catalog, estimate magnitudes on held-out events,
  report error and time-to-stable-estimate statistics.
"""

from repro.eew.evaluate import EewEvaluation, train_test_evaluate
from repro.eew.features import evolving_pgd
from repro.eew.magnitude import PgdMagnitudeEstimator

__all__ = [
    "EewEvaluation",
    "PgdMagnitudeEstimator",
    "evolving_pgd",
    "train_test_evaluate",
]
