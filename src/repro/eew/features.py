"""EEW feature extraction: evolving peak ground displacement.

Real-time GNSS EEW tracks, at each station, the running maximum of the
3-D displacement vector norm — the *evolving PGD*. Magnitude estimates
sharpen as the peak grows and more stations register signal. This module
computes those features from :class:`~repro.seismo.waveforms.WaveformSet`
products, vectorized over stations and time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WaveformError
from repro.seismo.waveforms import WaveformSet

__all__ = ["evolving_pgd", "detection_times"]


def evolving_pgd(ws: WaveformSet) -> np.ndarray:
    """Running PGD per station: (n_stations, n_samples), metres.

    ``out[i, t] = max_{s <= t} |u_i(s)|`` — monotone non-decreasing in
    time by construction.
    """
    norm = np.sqrt(np.sum(ws.data**2, axis=1))
    return np.maximum.accumulate(norm, axis=1)


def detection_times(
    ws: WaveformSet, threshold_m: float = 0.01
) -> np.ndarray:
    """First sample time each station's displacement exceeds a threshold.

    Returns seconds from rupture origin; stations that never trigger get
    ``inf``. The conventional GNSS EEW trigger is a few centimetres
    (above typical real-time noise).

    Raises
    ------
    WaveformError
        If the threshold is not positive.
    """
    if threshold_m <= 0:
        raise WaveformError(f"threshold must be positive, got {threshold_m}")
    pgd = evolving_pgd(ws)
    triggered = pgd >= threshold_m
    first = np.argmax(triggered, axis=1).astype(float) * ws.dt_s
    never = ~triggered.any(axis=1)
    first[never] = np.inf
    return first
