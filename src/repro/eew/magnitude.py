"""PGD scaling-law magnitude estimation (Melgar et al. 2015).

The operational GNSS EEW magnitude algorithm: peak ground displacement
obeys ``log10 PGD = A + B*Mw + C*Mw*log10 R`` (R = hypocentral distance,
km). Given fitted coefficients, a single station's evolving PGD yields a
magnitude estimate

    Mw_i(t) = (log10 PGD_i(t) - A) / (B + C * log10 R_i)

and the event estimate is the mean over triggered stations. Because PGD
grows until the static field is established, the estimate evolves and
converges — the "characterizing large earthquakes before rupture is
complete" behaviour (Melgar & Hayes 2019) the paper's synthetics exist
to train.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WaveformError
from repro.eew.features import evolving_pgd
from repro.seismo.geometry import FaultGeometry
from repro.seismo.ruptures import Rupture
from repro.seismo.stations import StationNetwork
from repro.seismo.validation import PgdFit
from repro.seismo.waveforms import WaveformSet

__all__ = ["PgdMagnitudeEstimator"]


def hypocentral_distances_km(
    rupture: Rupture, geometry: FaultGeometry, network: StationNetwork
) -> np.ndarray:
    """Distance from the rupture hypocenter to each station (km)."""
    hypo = rupture.subfault_indices[rupture.hypocenter_index]
    surface = network.distances_to_km(
        float(geometry.lon[hypo]), float(geometry.lat[hypo])
    )
    return np.sqrt(surface**2 + float(geometry.depth_km[hypo]) ** 2)


@dataclass(frozen=True)
class PgdMagnitudeEstimator:
    """Magnitude estimator from fitted PGD scaling coefficients.

    Construct from a :class:`~repro.seismo.validation.PgdFit` (the
    training step) via :meth:`from_fit`.

    Attributes
    ----------
    a, b, c:
        Scaling coefficients (b > 0, c < 0 for physical fits).
    min_pgd_m:
        Stations whose PGD is below this floor are ignored (noise).
    """

    a: float
    b: float
    c: float
    min_pgd_m: float = 0.01

    def __post_init__(self) -> None:
        if self.b <= 0:
            raise WaveformError(f"PGD coefficient b must be > 0, got {self.b}")
        if self.min_pgd_m <= 0:
            raise WaveformError(f"min_pgd_m must be > 0, got {self.min_pgd_m}")

    @classmethod
    def from_fit(cls, fit: PgdFit, min_pgd_m: float = 0.01) -> "PgdMagnitudeEstimator":
        """Build from a training-catalog regression."""
        return cls(a=fit.a, b=fit.b, c=fit.c, min_pgd_m=min_pgd_m)

    # -- core inversion ------------------------------------------------------

    def station_magnitudes(
        self, pgd_m: np.ndarray, distance_km: np.ndarray
    ) -> np.ndarray:
        """Per-station Mw estimates; NaN where PGD is below the floor
        or the denominator degenerates (station at the distance where
        ``B + C log10 R`` crosses zero)."""
        pgd = np.asarray(pgd_m, dtype=float)
        r = np.asarray(distance_km, dtype=float)
        if pgd.shape != r.shape:
            raise WaveformError(f"shape mismatch {pgd.shape} vs {r.shape}")
        denom = self.b + self.c * np.log10(np.maximum(r, 1.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            mw = (np.log10(pgd) - self.a) / denom
        mw = np.where(pgd >= self.min_pgd_m, mw, np.nan)
        mw = np.where(np.abs(denom) < 1e-3, np.nan, mw)
        return mw

    def estimate(self, pgd_m: np.ndarray, distance_km: np.ndarray) -> float:
        """Event magnitude: mean over usable stations (NaN if none)."""
        mw = self.station_magnitudes(pgd_m, distance_km)
        usable = np.isfinite(mw)
        if not np.any(usable):
            return float("nan")
        return float(np.mean(mw[usable]))

    # -- evolving estimates --------------------------------------------------

    def evolving_estimate(
        self,
        ws: WaveformSet,
        rupture: Rupture,
        geometry: FaultGeometry,
        network: StationNetwork,
    ) -> np.ndarray:
        """Mw(t) per output sample, NaN before any station is usable.

        This is the real-time view: at each second, invert the evolving
        PGD of every usable station and average.
        """
        if len(network) != ws.n_stations:
            raise WaveformError(
                f"network has {len(network)} stations, waveforms {ws.n_stations}"
            )
        pgd_t = evolving_pgd(ws)  # (nsta, nt)
        r = hypocentral_distances_km(rupture, geometry, network)
        denom = self.b + self.c * np.log10(np.maximum(r, 1.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            mw_t = (np.log10(pgd_t) - self.a) / denom[:, None]
        usable = (
            (pgd_t >= self.min_pgd_m)
            & (np.abs(denom)[:, None] >= 1e-3)
            & np.isfinite(mw_t)
        )
        # Manual masked mean: avoids nanmean's all-NaN warning for the
        # pre-trigger samples, which are expected.
        counts = usable.sum(axis=0)
        sums = np.where(usable, mw_t, 0.0).sum(axis=0)
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)

    def time_to_within(
        self, evolving_mw: np.ndarray, true_mw: float, tolerance: float, dt_s: float
    ) -> float:
        """First time the evolving estimate enters (and stays in) the
        tolerance band around the true magnitude; ``inf`` if never.

        "Stays in" means from that sample to the end of the record —
        the operationally meaningful convergence time.
        """
        if tolerance <= 0:
            raise WaveformError(f"tolerance must be positive, got {tolerance}")
        err = np.abs(np.asarray(evolving_mw) - true_mw)
        inside = np.isfinite(err) & (err <= tolerance)
        # Find the earliest index from which `inside` holds to the end.
        stays = np.flip(np.logical_and.accumulate(np.flip(inside)))
        idx = np.flatnonzero(stays)
        if idx.size == 0:
            return float("inf")
        return float(idx[0]) * dt_s
