"""Intelligent data delivery: query-trace-driven prefetching.

Paper §6: "Large datasets will be able to be efficiently distributed via
optimized caching systems and even prefetched for users via AI-based
'intelligent data delivery services' that utilize user query traces and
institutional data" (citing Qin, Rodero & Parashar 2022).

:class:`PrefetchService` implements the documented mechanism: it records
every discovery query and retrieval per home site, scores catalog
products by how well they match a site's recent query history, and
replicates the top predictions to that site ahead of demand. Scoring is
deliberately simple and inspectable (kind/tag/metadata match counts with
recency weighting) — the interface is what matters for the Fig 7 story.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.vdc.catalog import DataCatalog, ProductRecord
from repro.vdc.storage import FederatedStorage

__all__ = ["QueryEvent", "PrefetchService"]


@dataclass(frozen=True)
class QueryEvent:
    """One recorded discovery query from a home site.

    ``ranges`` carries the numeric range constraints of the query
    (``{"mw": (8.0, 9.0)}``) — the most selective query type, which the
    prefetch scorer would otherwise be blind to.
    """

    home_site: str
    kind: str | None = None
    tags: frozenset[str] = frozenset()
    ranges: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)


class PrefetchService:
    """Predictive replication from per-site query traces.

    Parameters
    ----------
    catalog, storage:
        The shared VDC services to read products from and replicate
        into.
    history:
        Number of recent queries retained per site.
    """

    def __init__(
        self,
        catalog: DataCatalog,
        storage: FederatedStorage,
        history: int = 64,
    ) -> None:
        if history < 1:
            raise StorageError(f"history must be >= 1, got {history}")
        self.catalog = catalog
        self.storage = storage
        self._traces: dict[str, deque[QueryEvent]] = {}
        self._history = history

    # -- trace collection ----------------------------------------------------

    def record_query(self, event: QueryEvent) -> None:
        """Record one discovery query (called by the portal)."""
        self.storage.site(event.home_site)  # validate
        trace = self._traces.setdefault(
            event.home_site, deque(maxlen=self._history)
        )
        trace.append(event)

    def trace_for(self, home_site: str) -> list[QueryEvent]:
        """The retained query trace of a site, oldest first."""
        return list(self._traces.get(home_site, ()))

    # -- prediction ------------------------------------------------------------

    def _score(self, record: ProductRecord, trace: list[QueryEvent]) -> float:
        """Recency-weighted match score of a product against a trace."""
        score = 0.0
        for age, event in enumerate(reversed(trace)):
            weight = 1.0 / (1.0 + age)  # newest query weighs most
            match = 0.0
            if event.kind is not None and event.kind == record.kind:
                match += 2.0
            match += len(event.tags & record.tags)
            match += sum(
                1.0
                for key, value in event.metadata.items()
                if record.metadata.get(key) == value
            )
            for key, (lo, hi) in event.ranges.items():
                value = record.metadata.get(key)
                if (
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and lo <= value <= hi
                ):
                    match += 1.0
            score += weight * match
        return score

    def predict(self, home_site: str, top: int = 3) -> list[ProductRecord]:
        """Products most likely to be requested next from a site.

        Products already replicated at the site are excluded. Ties break
        by product id for determinism.
        """
        if top < 1:
            raise StorageError(f"top must be >= 1, got {top}")
        trace = self.trace_for(home_site)
        if not trace:
            return []
        scored: list[tuple[float, ProductRecord]] = []
        for record in self.catalog.search():
            if home_site in self.storage.replicas(record.product_id):
                continue
            score = self._score(record, trace)
            if score > 0.0:
                scored.append((score, record))
        scored.sort(key=lambda item: (-item[0], item[1].product_id))
        return [record for _, record in scored[:top]]

    # -- action ------------------------------------------------------------------

    def prefetch(
        self, home_site: str, top: int = 3, now: float | None = None
    ) -> list[str]:
        """Replicate the predicted products to the site.

        Products that do not fit (site capacity) are skipped, not
        errors. Predicted products with real bytes behind them (GF
        banks) are also materialized into the storage's artifact-cache
        disk store, so the prefetch is durable — the paper's
        "prefetched for users" made concrete. Returns the product ids
        actually replicated.

        Pass ``now=`` to make the prefetch health-aware: a destination
        that is dark (outage window) or fail-fasted by an open circuit
        breaker is skipped outright — prefetching into a dead cache
        wastes the transfer and would drive its breaker — and retried
        naturally on the next prefetch cycle.
        """
        if now is not None and not self.storage.site_healthy(home_site, now):
            return []
        placed: list[str] = []
        for record in self.predict(home_site, top=top):
            try:
                self.storage.replicate(record.product_id, home_site)
            except StorageError:
                continue  # over capacity: skip this prediction
            self.storage.materialize(record.product_id)
            placed.append(record.product_id)
        return placed
