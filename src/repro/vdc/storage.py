"""Federated storage: sites, replicas, and cached retrieval times.

VDC federates storage across member institutions and "large datasets
will be able to be efficiently distributed via optimized caching systems
and even prefetched for users" (paper §6). The model: named sites with
capacities and bandwidths; products are placed on a primary site and may
be replicated; a retrieval from a user's *home site* is fast when a
replica (or prefetched copy) is local, else pays the inter-site
transfer and leaves a cached replica behind.

Products whose bytes the library actually has — Green's-function banks —
route through the shared :class:`~repro.core.gfcache.GFCache`: the site
model tracks *where* replicas live and charges delivery times, while a
single ``artifact_cache`` holds the one physical copy, mirroring OSDF's
single federated namespace behind many caches. ``LocalRunner`` and the
VDC therefore share one cache implementation (and, when both point at
the same directory, one store).

Resilience (PR 8): construct the storage with a
:class:`~repro.resilience.BreakerPolicy` and pass ``now=`` to
retrievals, and every site gets a per-site circuit breaker. A retrieval
first tries the home site's replica, then fails over across the
remaining replica sites from fastest WAN egress down; each *failed*
probe (a site inside a :class:`~repro.faults.SiteOutage` window) costs
``probe_cost_s`` and feeds its breaker, while an *open* breaker is
skipped instantly — the fail-fast that makes repeated retrievals cheap
during a long outage. When no replica is reachable the retrieval raises
the retryable :class:`~repro.errors.StorageUnavailableError`, and
:meth:`FederatedStorage.fetch_bank` can fall back to a caller-supplied
``rebuild`` (recompute from source). Without a breaker policy (or
without ``now=``) every path is bit-identical to the pre-resilience
model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from repro import obs
from repro.errors import StorageError, StorageUnavailableError
from repro.resilience import BreakerPolicy, CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.gfcache import GFCache
    from repro.faults import SiteOutage
    from repro.seismo.greens import GreensFunctionBank

__all__ = ["StorageSite", "FederatedStorage"]


@dataclass(frozen=True)
class StorageSite:
    """One federated storage member.

    Attributes
    ----------
    name:
        Unique site name.
    capacity_mb:
        Total capacity.
    local_mb_per_s:
        Bandwidth for site-local reads.
    wan_mb_per_s:
        Bandwidth for inter-site transfers.
    """

    name: str
    capacity_mb: float = 1e6
    local_mb_per_s: float = 500.0
    wan_mb_per_s: float = 40.0

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("site name must be non-empty")
        if self.capacity_mb <= 0:
            raise StorageError(f"{self.name}: capacity must be positive")
        if self.local_mb_per_s <= 0 or self.wan_mb_per_s <= 0:
            raise StorageError(f"{self.name}: bandwidths must be positive")


class FederatedStorage:
    """Replica placement and retrieval across sites.

    Parameters
    ----------
    sites:
        The federation members.
    artifact_cache:
        Optional :class:`~repro.core.gfcache.GFCache` holding the real
        bytes of bank-valued products (see module docstring). Without
        it, :meth:`store_bank`/:meth:`fetch_bank` are unavailable and
        the storage is a pure placement model.
    breaker_policy:
        When set, every site gets a :class:`~repro.resilience.CircuitBreaker`
        and retrievals called with ``now=`` run the failover path of the
        module docstring. ``None`` (default) disables the resilience
        layer entirely.
    outages:
        :class:`~repro.faults.SiteOutage` windows (chaos injection);
        more can be added later with :meth:`add_outage`.
    """

    def __init__(
        self,
        sites: list[StorageSite],
        artifact_cache: "GFCache | None" = None,
        breaker_policy: BreakerPolicy | None = None,
        outages: "Iterable[SiteOutage]" = (),
    ) -> None:
        if not sites:
            raise StorageError("need at least one storage site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate site names: {names}")
        self.sites = {s.name: s for s in sites}
        self.artifact_cache = artifact_cache
        self.breaker_policy = breaker_policy
        self.breakers: dict[str, CircuitBreaker] = (
            {name: CircuitBreaker(name, breaker_policy) for name in self.sites}
            if breaker_policy is not None
            else {}
        )
        self.outages: list[SiteOutage] = list(outages)
        self.n_failovers = 0
        self.n_rebuilds = 0
        self._replicas: dict[str, set[str]] = {}  # product_id -> site names
        self._usage_mb: dict[str, float] = {name: 0.0 for name in self.sites}
        self._sizes: dict[str, float] = {}
        self._bank_keys: dict[str, str] = {}  # product_id -> GF cache key
        self._bank_dtypes: dict[str, str] = {}  # product_id -> bank dtype

    def site(self, name: str) -> StorageSite:
        """Site by name."""
        try:
            return self.sites[name]
        except KeyError:
            raise StorageError(f"unknown site {name!r}") from None

    # -- health -------------------------------------------------------------

    def add_outage(self, outage: "SiteOutage") -> None:
        """Schedule one site-outage window (validates the site name)."""
        self.site(outage.site)
        self.outages.append(outage)

    def in_outage(self, name: str, now: float) -> bool:
        """Whether a site is inside an injected outage window."""
        return any(o.site == name and o.active(now) for o in self.outages)

    def site_healthy(self, name: str, now: float) -> bool:
        """Non-mutating health query: outside every outage window and
        (when breakers are on) not fail-fasted by an open breaker.

        What prefetch uses to skip dark destinations; does not move any
        breaker's state machine.
        """
        self.site(name)
        if self.in_outage(name, now):
            return False
        breaker = self.breakers.get(name)
        return breaker is None or breaker.would_allow(now)

    def breaker_snapshots(self, now: float | None = None) -> list[dict]:
        """Per-site breaker states for campaign summaries (name order)."""
        return [
            self.breakers[name].snapshot(now) for name in sorted(self.breakers)
        ]

    # -- placement ----------------------------------------------------------

    def store(self, product_id: str, size_mb: float, site: str) -> None:
        """Place the primary replica of a product."""
        s = self.site(site)
        if size_mb < 0:
            raise StorageError(f"{product_id}: negative size")
        if product_id in self._replicas:
            raise StorageError(f"product {product_id!r} already stored")
        if self._usage_mb[site] + size_mb > s.capacity_mb:
            raise StorageError(f"site {site!r} over capacity storing {product_id!r}")
        self._replicas[product_id] = {site}
        self._sizes[product_id] = float(size_mb)
        self._usage_mb[site] += size_mb

    def replicate(self, product_id: str, site: str) -> None:
        """Add a replica (idempotent) — also used for prefetching."""
        self.site(site)
        if product_id not in self._replicas:
            raise StorageError(f"unknown product {product_id!r}")
        if site in self._replicas[product_id]:
            return
        size = self._sizes[product_id]
        if self._usage_mb[site] + size > self.sites[site].capacity_mb:
            raise StorageError(f"site {site!r} over capacity replicating {product_id!r}")
        self._replicas[product_id].add(site)
        self._usage_mb[site] += size

    def remove(self, product_id: str) -> None:
        """Remove a product entirely: every replica plus bookkeeping.

        The rollback primitive for transactional deposits: after a
        partial deposit fails, the portal calls this so the product id
        can be stored again on the next attempt (unlike
        :meth:`drop_replica`, which keeps the id registered). Also
        forgets any attached bank key — the artifact-cache bytes
        themselves are left alone, since content-addressed entries may
        be shared with other producers.
        """
        replicas = self._replicas.get(product_id)
        if replicas is None:
            raise StorageError(f"unknown product {product_id!r}")
        touched = set(replicas)
        del self._replicas[product_id]
        del self._sizes[product_id]
        self._bank_keys.pop(product_id, None)
        self._bank_dtypes.pop(product_id, None)
        for site in touched:
            self._recompute_usage(site)

    def drop_replica(self, product_id: str, site: str, force: bool = False) -> None:
        """Remove one replica.

        Dropping the *last* replica makes the product unretrievable
        (every later fetch must rebuild from source), so it is refused
        unless ``force=True`` — the guard against a cleanup script
        silently destroying the only copy of a product.
        """
        if product_id not in self._replicas:
            raise StorageError(f"unknown product {product_id!r}")
        replicas = self._replicas[product_id]
        if site not in replicas:
            raise StorageError(f"no replica of {product_id!r} at {site!r}")
        if len(replicas) == 1 and not force:
            raise StorageError(
                f"refusing to drop the last replica of {product_id!r} "
                f"(at {site!r}); pass force=True to destroy it"
            )
        replicas.remove(site)
        self._recompute_usage(site)

    def _recompute_usage(self, site: str) -> None:
        """Rebuild a site's usage from its replica set.

        Removals recompute instead of decrementing so repeated
        store/rollback cycles cannot accumulate float residue — an
        emptied site reads exactly 0.0 MB again.
        """
        self._usage_mb[site] = sum(
            self._sizes[pid]
            for pid, replicas in self._replicas.items()
            if site in replicas
        )

    # -- retrieval ------------------------------------------------------------

    def replicas(self, product_id: str) -> set[str]:
        """Sites holding the product."""
        if product_id not in self._replicas:
            raise StorageError(f"unknown product {product_id!r}")
        return set(self._replicas[product_id])

    def retrieval_time_s(
        self,
        product_id: str,
        home_site: str,
        cache: bool = True,
        now: float | None = None,
    ) -> float:
        """Seconds to deliver a product to a user at ``home_site``.

        A local replica reads at local bandwidth; otherwise the product
        crosses the WAN from a holding site and (with ``cache=True``)
        leaves a replica behind — the "optimized caching" behaviour.

        With a breaker policy configured *and* ``now=`` supplied, the
        resilient failover path runs instead: sources are tried home
        site first, then the other replica sites from fastest WAN
        egress down. A source whose breaker is open is skipped for
        free; a source that turns out to be dark (outage window) costs
        ``probe_cost_s`` and feeds its breaker. With every source dark
        the retrieval raises the retryable
        :class:`~repro.errors.StorageUnavailableError` carrying the
        probe time already sunk (``penalty_s``). When all sites are
        healthy the charged time equals the legacy path exactly.
        """
        home = self.site(home_site)
        size = self._sizes.get(product_id)
        if size is None:
            raise StorageError(f"unknown product {product_id!r}")
        replicas = self._replicas[product_id]
        if not replicas:
            exc = StorageUnavailableError(
                f"no replicas of {product_id!r} remain anywhere"
            )
            exc.penalty_s = 0.0
            raise exc
        if now is None or self.breaker_policy is None:
            # Legacy path: every site is implicitly healthy.
            if home_site in replicas:
                obs.counter_add("repro_storage_transfer_mb_total", size,
                                {"path": "local"})
                return size / home.local_mb_per_s
            elapsed = size / home.wan_mb_per_s
            obs.counter_add("repro_storage_transfer_mb_total", size,
                            {"path": "wan"})
            if cache and self._usage_mb[home_site] + size <= home.capacity_mb:
                replicas.add(home_site)
                self._usage_mb[home_site] += size
            return elapsed

        candidates = sorted(
            replicas,
            key=lambda name: (
                name != home_site,  # home replica first (local read)
                -self.sites[name].wan_mb_per_s,  # then fastest egress
                name,
            ),
        )
        penalty = 0.0
        for source in candidates:
            breaker = self.breakers[source]
            if not breaker.allow(now + penalty):
                continue  # open breaker: fail fast, no probe cost
            if self.in_outage(source, now + penalty):
                breaker.record_failure(now + penalty)
                penalty += self.breaker_policy.probe_cost_s
                continue
            breaker.record_success()
            if source != candidates[0]:
                self.n_failovers += 1
                obs.counter_add("repro_storage_failovers_total")
            if penalty > 0.0:
                obs.counter_add("repro_storage_probe_seconds_total", penalty)
            if source == home_site:
                obs.counter_add("repro_storage_transfer_mb_total", size,
                                {"path": "local"})
                return penalty + size / home.local_mb_per_s
            elapsed = penalty + size / home.wan_mb_per_s
            obs.counter_add("repro_storage_transfer_mb_total", size,
                            {"path": "wan"})
            if (
                cache
                and self.site_healthy(home_site, now + penalty)
                and self._usage_mb[home_site] + size <= home.capacity_mb
            ):
                replicas.add(home_site)
                self._usage_mb[home_site] += size
            return elapsed
        exc = StorageUnavailableError(
            f"no healthy replica of {product_id!r} reachable at t={now:.0f}s "
            f"(tried {len(candidates)} site(s), sunk {penalty:.0f}s probing)"
        )
        exc.penalty_s = penalty
        raise exc

    def usage_mb(self, site: str) -> float:
        """Bytes (MB) currently placed at a site."""
        self.site(site)
        return self._usage_mb[site]

    def product_size_mb(self, product_id: str) -> float:
        """Charged size of a product in MB (what every transfer pays)."""
        size = self._sizes.get(product_id)
        if size is None:
            raise StorageError(f"unknown product {product_id!r}")
        return size

    # -- bank-valued products (routed through the GF cache) -------------------

    def _require_cache(self) -> "GFCache":
        if self.artifact_cache is None:
            raise StorageError(
                "no artifact cache configured; pass artifact_cache=GFCache(...) "
                "to store real GF banks"
            )
        return self.artifact_cache

    def store_bank(
        self,
        product_id: str,
        bank: "GreensFunctionBank",
        site: str,
        key: str | None = None,
    ) -> float:
        """Place a GF bank: replica bookkeeping plus the real bytes.

        The site model records a primary replica sized from the bank's
        physical arrays; the bytes themselves go into the shared
        :attr:`artifact_cache` under ``key``. Pass the content-addressed
        :func:`~repro.core.gfcache.gf_bank_key` of the inputs to share
        the entry with in-process producers (``LocalRunner``); the
        default derives a key from the product id. Returns the charged
        size in MB.

        The charge is ``bank.nbytes``, so a float32 bank occupies (and
        every later WAN transfer of it pays for) half the bytes of its
        float64 twin — the Stash/OSDF transfer saving the opt-in dtype
        buys.
        """
        cache = self._require_cache()
        if key is None:
            key = hashlib.sha256(b"product\x1f" + product_id.encode("utf-8")).hexdigest()
        size_mb = bank.nbytes / (1024.0 * 1024.0)
        self.store(product_id, size_mb, site)
        self._bank_keys[product_id] = key
        self._bank_dtypes[product_id] = str(bank.dtype)
        cache.put(key, bank)
        return size_mb

    def bank_key(self, product_id: str) -> str | None:
        """GF-cache key of a bank-valued product, or ``None``."""
        return self._bank_keys.get(product_id)

    def bank_dtype(self, product_id: str) -> str | None:
        """Recorded dtype of a bank-valued product, or ``None``."""
        return self._bank_dtypes.get(product_id)

    def fetch_bank(
        self,
        product_id: str,
        home_site: str,
        now: float | None = None,
        rebuild: "Callable[[], GreensFunctionBank] | None" = None,
    ) -> "tuple[GreensFunctionBank, float]":
        """Deliver a bank to a home site: ``(bank, elapsed seconds)``.

        The elapsed time comes from :meth:`retrieval_time_s` (leaving a
        cached replica behind as usual); the bytes come from the one
        physical copy in the artifact cache.

        ``rebuild`` is the recompute-from-source fallback: when no
        healthy replica survives, or the cached bytes are gone (e.g.
        quarantined after failing their digest check), the bank is
        regenerated, re-seeded into the artifact cache, and returned —
        the elapsed time then covers only the probe penalty already
        sunk, since the recompute happens on the caller's clock.
        Without ``rebuild`` those conditions raise.
        """
        cache = self._require_cache()
        key = self._bank_keys.get(product_id)
        if key is None:
            raise StorageError(f"product {product_id!r} has no bank attached")
        try:
            elapsed = self.retrieval_time_s(product_id, home_site, now=now)
        except StorageUnavailableError as exc:
            if rebuild is None:
                raise
            bank = rebuild()
            cache.put(key, bank)
            self.n_rebuilds += 1
            obs.counter_add("repro_storage_rebuilds_total")
            return bank, float(getattr(exc, "penalty_s", 0.0))
        bank = cache.get(key)
        if bank is None:
            if rebuild is None:
                raise StorageError(
                    f"bank bytes for {product_id!r} are gone from the artifact cache"
                )
            bank = rebuild()
            cache.put(key, bank)
            self.n_rebuilds += 1
            obs.counter_add("repro_storage_rebuilds_total")
        return bank, elapsed

    def materialize(self, product_id: str) -> Path | None:
        """Make a bank-valued product durable in the cache's disk store.

        The in-process analog of prefetching the archive into an OSDF
        cache ahead of demand. No-op (``None``) for products without
        bank bytes or when the cache is memory-only.
        """
        key = self._bank_keys.get(product_id)
        if key is None or self.artifact_cache is None:
            return None
        return self.artifact_cache.ensure_on_disk(key)
