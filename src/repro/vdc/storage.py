"""Federated storage: sites, replicas, and cached retrieval times.

VDC federates storage across member institutions and "large datasets
will be able to be efficiently distributed via optimized caching systems
and even prefetched for users" (paper §6). The model: named sites with
capacities and bandwidths; products are placed on a primary site and may
be replicated; a retrieval from a user's *home site* is fast when a
replica (or prefetched copy) is local, else pays the inter-site
transfer and leaves a cached replica behind.

Products whose bytes the library actually has — Green's-function banks —
route through the shared :class:`~repro.core.gfcache.GFCache`: the site
model tracks *where* replicas live and charges delivery times, while a
single ``artifact_cache`` holds the one physical copy, mirroring OSDF's
single federated namespace behind many caches. ``LocalRunner`` and the
VDC therefore share one cache implementation (and, when both point at
the same directory, one store).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.gfcache import GFCache
    from repro.seismo.greens import GreensFunctionBank

__all__ = ["StorageSite", "FederatedStorage"]


@dataclass(frozen=True)
class StorageSite:
    """One federated storage member.

    Attributes
    ----------
    name:
        Unique site name.
    capacity_mb:
        Total capacity.
    local_mb_per_s:
        Bandwidth for site-local reads.
    wan_mb_per_s:
        Bandwidth for inter-site transfers.
    """

    name: str
    capacity_mb: float = 1e6
    local_mb_per_s: float = 500.0
    wan_mb_per_s: float = 40.0

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("site name must be non-empty")
        if self.capacity_mb <= 0:
            raise StorageError(f"{self.name}: capacity must be positive")
        if self.local_mb_per_s <= 0 or self.wan_mb_per_s <= 0:
            raise StorageError(f"{self.name}: bandwidths must be positive")


class FederatedStorage:
    """Replica placement and retrieval across sites.

    Parameters
    ----------
    sites:
        The federation members.
    artifact_cache:
        Optional :class:`~repro.core.gfcache.GFCache` holding the real
        bytes of bank-valued products (see module docstring). Without
        it, :meth:`store_bank`/:meth:`fetch_bank` are unavailable and
        the storage is a pure placement model.
    """

    def __init__(
        self,
        sites: list[StorageSite],
        artifact_cache: "GFCache | None" = None,
    ) -> None:
        if not sites:
            raise StorageError("need at least one storage site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate site names: {names}")
        self.sites = {s.name: s for s in sites}
        self.artifact_cache = artifact_cache
        self._replicas: dict[str, set[str]] = {}  # product_id -> site names
        self._usage_mb: dict[str, float] = {name: 0.0 for name in self.sites}
        self._sizes: dict[str, float] = {}
        self._bank_keys: dict[str, str] = {}  # product_id -> GF cache key
        self._bank_dtypes: dict[str, str] = {}  # product_id -> bank dtype

    def site(self, name: str) -> StorageSite:
        """Site by name."""
        try:
            return self.sites[name]
        except KeyError:
            raise StorageError(f"unknown site {name!r}") from None

    # -- placement ----------------------------------------------------------

    def store(self, product_id: str, size_mb: float, site: str) -> None:
        """Place the primary replica of a product."""
        s = self.site(site)
        if size_mb < 0:
            raise StorageError(f"{product_id}: negative size")
        if product_id in self._replicas:
            raise StorageError(f"product {product_id!r} already stored")
        if self._usage_mb[site] + size_mb > s.capacity_mb:
            raise StorageError(f"site {site!r} over capacity storing {product_id!r}")
        self._replicas[product_id] = {site}
        self._sizes[product_id] = float(size_mb)
        self._usage_mb[site] += size_mb

    def replicate(self, product_id: str, site: str) -> None:
        """Add a replica (idempotent) — also used for prefetching."""
        self.site(site)
        if product_id not in self._replicas:
            raise StorageError(f"unknown product {product_id!r}")
        if site in self._replicas[product_id]:
            return
        size = self._sizes[product_id]
        if self._usage_mb[site] + size > self.sites[site].capacity_mb:
            raise StorageError(f"site {site!r} over capacity replicating {product_id!r}")
        self._replicas[product_id].add(site)
        self._usage_mb[site] += size

    def drop_replica(self, product_id: str, site: str) -> None:
        """Remove one replica; the last replica cannot be dropped."""
        if product_id not in self._replicas:
            raise StorageError(f"unknown product {product_id!r}")
        replicas = self._replicas[product_id]
        if site not in replicas:
            raise StorageError(f"no replica of {product_id!r} at {site!r}")
        if len(replicas) == 1:
            raise StorageError(f"cannot drop the last replica of {product_id!r}")
        replicas.remove(site)
        self._usage_mb[site] -= self._sizes[product_id]

    # -- retrieval ------------------------------------------------------------

    def replicas(self, product_id: str) -> set[str]:
        """Sites holding the product."""
        if product_id not in self._replicas:
            raise StorageError(f"unknown product {product_id!r}")
        return set(self._replicas[product_id])

    def retrieval_time_s(
        self, product_id: str, home_site: str, cache: bool = True
    ) -> float:
        """Seconds to deliver a product to a user at ``home_site``.

        A local replica reads at local bandwidth; otherwise the product
        crosses the WAN from a holding site and (with ``cache=True``)
        leaves a replica behind — the "optimized caching" behaviour.
        """
        home = self.site(home_site)
        size = self._sizes.get(product_id)
        if size is None:
            raise StorageError(f"unknown product {product_id!r}")
        if home_site in self._replicas[product_id]:
            return size / home.local_mb_per_s
        elapsed = size / home.wan_mb_per_s
        if cache and self._usage_mb[home_site] + size <= home.capacity_mb:
            self._replicas[product_id].add(home_site)
            self._usage_mb[home_site] += size
        return elapsed

    def usage_mb(self, site: str) -> float:
        """Bytes (MB) currently placed at a site."""
        self.site(site)
        return self._usage_mb[site]

    def product_size_mb(self, product_id: str) -> float:
        """Charged size of a product in MB (what every transfer pays)."""
        size = self._sizes.get(product_id)
        if size is None:
            raise StorageError(f"unknown product {product_id!r}")
        return size

    # -- bank-valued products (routed through the GF cache) -------------------

    def _require_cache(self) -> "GFCache":
        if self.artifact_cache is None:
            raise StorageError(
                "no artifact cache configured; pass artifact_cache=GFCache(...) "
                "to store real GF banks"
            )
        return self.artifact_cache

    def store_bank(
        self,
        product_id: str,
        bank: "GreensFunctionBank",
        site: str,
        key: str | None = None,
    ) -> float:
        """Place a GF bank: replica bookkeeping plus the real bytes.

        The site model records a primary replica sized from the bank's
        physical arrays; the bytes themselves go into the shared
        :attr:`artifact_cache` under ``key``. Pass the content-addressed
        :func:`~repro.core.gfcache.gf_bank_key` of the inputs to share
        the entry with in-process producers (``LocalRunner``); the
        default derives a key from the product id. Returns the charged
        size in MB.

        The charge is ``bank.nbytes``, so a float32 bank occupies (and
        every later WAN transfer of it pays for) half the bytes of its
        float64 twin — the Stash/OSDF transfer saving the opt-in dtype
        buys.
        """
        cache = self._require_cache()
        if key is None:
            key = hashlib.sha256(b"product\x1f" + product_id.encode("utf-8")).hexdigest()
        size_mb = bank.nbytes / (1024.0 * 1024.0)
        self.store(product_id, size_mb, site)
        self._bank_keys[product_id] = key
        self._bank_dtypes[product_id] = str(bank.dtype)
        cache.put(key, bank)
        return size_mb

    def bank_key(self, product_id: str) -> str | None:
        """GF-cache key of a bank-valued product, or ``None``."""
        return self._bank_keys.get(product_id)

    def bank_dtype(self, product_id: str) -> str | None:
        """Recorded dtype of a bank-valued product, or ``None``."""
        return self._bank_dtypes.get(product_id)

    def fetch_bank(
        self, product_id: str, home_site: str
    ) -> "tuple[GreensFunctionBank, float]":
        """Deliver a bank to a home site: ``(bank, elapsed seconds)``.

        The elapsed time comes from :meth:`retrieval_time_s` (leaving a
        cached replica behind as usual); the bytes come from the one
        physical copy in the artifact cache.
        """
        cache = self._require_cache()
        key = self._bank_keys.get(product_id)
        if key is None:
            raise StorageError(f"product {product_id!r} has no bank attached")
        elapsed = self.retrieval_time_s(product_id, home_site)
        bank = cache.get(key)
        if bank is None:
            raise StorageError(
                f"bank bytes for {product_id!r} are gone from the artifact cache"
            )
        return bank, elapsed

    def materialize(self, product_id: str) -> Path | None:
        """Make a bank-valued product durable in the cache's disk store.

        The in-process analog of prefetching the archive into an OSDF
        cache ahead of demand. No-op (``None``) for products without
        bank bytes or when the cache is memory-only.
        """
        key = self._bank_keys.get(product_id)
        if key is None or self.artifact_cache is None:
            return None
        return self.artifact_cache.ensure_on_disk(key)
