"""The VDC data catalog: deposition, curation, tagging, discovery.

VDC "enables data deposition, curation, and tagging with metadata,
allowing synthetic data products to be accessed more easily and timely
for training EEW models" (paper §6). The catalog is an in-memory,
JSON-persistable index of :class:`ProductRecord` entries with free-form
tags and typed metadata, plus a small query language (exact match,
ranges on numeric fields, tag subsets).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import CatalogError

__all__ = ["ProductRecord", "DataCatalog"]

_ID_RE = re.compile(r"^[A-Za-z0-9._\-]{1,128}$")


@dataclass(frozen=True)
class ProductRecord:
    """One curated data product.

    Attributes
    ----------
    product_id:
        Unique catalog identifier (e.g. ``"chile_slab.000042.waveforms"``).
    kind:
        Product class: ``"waveforms"``, ``"ruptures"``, ``"gf_bank"``...
    site:
        Storage site holding the primary replica.
    size_mb:
        Payload size.
    tags:
        Free-form curation tags (``frozenset``).
    metadata:
        Typed attributes (magnitude, station count, region...).
    provenance:
        Where the product came from (workflow name, run id).
    """

    product_id: str
    kind: str
    site: str
    size_mb: float
    tags: frozenset[str] = frozenset()
    metadata: dict = field(default_factory=dict)
    provenance: str = ""

    def __post_init__(self) -> None:
        if not _ID_RE.match(self.product_id):
            raise CatalogError(f"invalid product id {self.product_id!r}")
        if not self.kind:
            raise CatalogError(f"{self.product_id}: kind must be non-empty")
        if self.size_mb < 0:
            raise CatalogError(f"{self.product_id}: negative size")


class DataCatalog:
    """In-memory catalog with persistence and queries."""

    def __init__(self) -> None:
        self._records: dict[str, ProductRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, product_id: object) -> bool:
        return product_id in self._records

    # -- deposition / curation ----------------------------------------------

    def deposit(self, record: ProductRecord) -> None:
        """Add a new product; duplicate ids are an error."""
        if record.product_id in self._records:
            raise CatalogError(f"duplicate product id {record.product_id!r}")
        self._records[record.product_id] = record

    def get(self, product_id: str) -> ProductRecord:
        """Fetch a record by id."""
        try:
            return self._records[product_id]
        except KeyError:
            raise CatalogError(f"no product {product_id!r}") from None

    def tag(self, product_id: str, *tags: str) -> ProductRecord:
        """Curation: add tags to an existing product."""
        record = self.get(product_id)
        updated = replace(record, tags=record.tags | set(tags))
        self._records[product_id] = updated
        return updated

    def annotate(self, product_id: str, **metadata: object) -> ProductRecord:
        """Curation: merge metadata keys into an existing product."""
        record = self.get(product_id)
        merged = dict(record.metadata)
        merged.update(metadata)
        updated = replace(record, metadata=merged)
        self._records[product_id] = updated
        return updated

    def withdraw(self, product_id: str) -> None:
        """Remove a product from the catalog."""
        if product_id not in self._records:
            raise CatalogError(f"no product {product_id!r}")
        del self._records[product_id]

    # -- discovery -------------------------------------------------------------

    def search(
        self,
        kind: str | None = None,
        tags: set[str] | None = None,
        ranges: dict[str, tuple[float, float]] | None = None,
        **exact: object,
    ) -> list[ProductRecord]:
        """Query the catalog.

        Parameters
        ----------
        kind:
            Restrict to a product class.
        tags:
            Require all of these tags.
        ranges:
            ``{"mw": (8.0, 9.0)}`` — inclusive numeric metadata ranges.
        exact:
            Exact-match metadata constraints.

        Results are sorted by product id for determinism.
        """
        out = []
        for record in self._records.values():
            if kind is not None and record.kind != kind:
                continue
            if tags is not None and not tags <= record.tags:
                continue
            if ranges:
                ok = True
                for key, (lo, hi) in ranges.items():
                    value = record.metadata.get(key)
                    if not isinstance(value, (int, float)) or not (lo <= value <= hi):
                        ok = False
                        break
                if not ok:
                    continue
            if any(record.metadata.get(k) != v for k, v in exact.items()):
                continue
            out.append(record)
        return sorted(out, key=lambda r: r.product_id)

    def kinds(self) -> dict[str, int]:
        """Product counts by kind."""
        counts: dict[str, int] = {}
        for record in self._records.values():
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    # -- persistence --------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Persist the catalog as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = [
            {
                "product_id": r.product_id,
                "kind": r.kind,
                "site": r.site,
                "size_mb": r.size_mb,
                "tags": sorted(r.tags),
                "metadata": r.metadata,
                "provenance": r.provenance,
            }
            for r in sorted(self._records.values(), key=lambda r: r.product_id)
        ]
        path.write_text(json.dumps(payload, indent=2))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DataCatalog":
        """Load a catalog saved by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise CatalogError(f"catalog file not found: {path}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CatalogError(f"{path}: invalid JSON: {exc}") from exc
        catalog = cls()
        for item in payload:
            try:
                catalog.deposit(
                    ProductRecord(
                        product_id=item["product_id"],
                        kind=item["kind"],
                        site=item["site"],
                        size_mb=float(item["size_mb"]),
                        tags=frozenset(item.get("tags", [])),
                        metadata=item.get("metadata", {}),
                        provenance=item.get("provenance", ""),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise CatalogError(f"{path}: malformed record: {exc}") from exc
        return catalog
