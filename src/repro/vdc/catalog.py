"""The VDC data catalog: deposition, curation, tagging, discovery.

VDC "enables data deposition, curation, and tagging with metadata,
allowing synthetic data products to be accessed more easily and timely
for training EEW models" (paper §6). The catalog is an in-memory,
JSON-persistable index of :class:`ProductRecord` entries with free-form
tags and typed metadata, plus a small query language (exact match,
ranges on numeric fields, tag subsets).

Persistence goes through :mod:`repro.integrity`: :meth:`DataCatalog.save`
writes the JSON via temp-then-rename with a sha256 sidecar, and
:meth:`DataCatalog.load` verifies the digest before parsing, quarantining
a corrupt file instead of silently serving (or crashing on) torn records
— the catalog is community metadata, the one artifact the federation
cannot rebuild from source.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import CatalogError, IntegrityError
from repro.integrity import quarantine_artifact, read_verified, write_artifact

__all__ = ["ProductRecord", "DataCatalog"]

_ID_RE = re.compile(r"^[A-Za-z0-9._\-]{1,128}$")


@dataclass(frozen=True)
class ProductRecord:
    """One curated data product.

    Attributes
    ----------
    product_id:
        Unique catalog identifier (e.g. ``"chile_slab.000042.waveforms"``).
    kind:
        Product class: ``"waveforms"``, ``"ruptures"``, ``"gf_bank"``...
    site:
        Storage site holding the primary replica.
    size_mb:
        Payload size.
    tags:
        Free-form curation tags (``frozenset``).
    metadata:
        Typed attributes (magnitude, station count, region...).
    provenance:
        Where the product came from (workflow name, run id).
    """

    product_id: str
    kind: str
    site: str
    size_mb: float
    tags: frozenset[str] = frozenset()
    metadata: dict = field(default_factory=dict)
    provenance: str = ""

    def __post_init__(self) -> None:
        if not _ID_RE.match(self.product_id):
            raise CatalogError(f"invalid product id {self.product_id!r}")
        if not self.kind:
            raise CatalogError(f"{self.product_id}: kind must be non-empty")
        if self.size_mb < 0:
            raise CatalogError(f"{self.product_id}: negative size")


class DataCatalog:
    """In-memory catalog with persistence and queries."""

    def __init__(self) -> None:
        self._records: dict[str, ProductRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, product_id: object) -> bool:
        return product_id in self._records

    # -- deposition / curation ----------------------------------------------

    def deposit(self, record: ProductRecord) -> None:
        """Add a new product; duplicate ids are an error."""
        if record.product_id in self._records:
            raise CatalogError(f"duplicate product id {record.product_id!r}")
        self._records[record.product_id] = record

    def get(self, product_id: str) -> ProductRecord:
        """Fetch a record by id."""
        try:
            return self._records[product_id]
        except KeyError:
            raise CatalogError(f"no product {product_id!r}") from None

    def tag(self, product_id: str, *tags: str) -> ProductRecord:
        """Curation: add tags to an existing product."""
        record = self.get(product_id)
        updated = replace(record, tags=record.tags | set(tags))
        self._records[product_id] = updated
        return updated

    def annotate(self, product_id: str, **metadata: object) -> ProductRecord:
        """Curation: merge metadata keys into an existing product."""
        record = self.get(product_id)
        merged = dict(record.metadata)
        merged.update(metadata)
        updated = replace(record, metadata=merged)
        self._records[product_id] = updated
        return updated

    def withdraw(self, product_id: str) -> None:
        """Remove a product from the catalog."""
        if product_id not in self._records:
            raise CatalogError(f"no product {product_id!r}")
        del self._records[product_id]

    # -- discovery -------------------------------------------------------------

    def search(
        self,
        kind: str | None = None,
        tags: set[str] | None = None,
        ranges: dict[str, tuple[float, float]] | None = None,
        **exact: object,
    ) -> list[ProductRecord]:
        """Query the catalog.

        Parameters
        ----------
        kind:
            Restrict to a product class.
        tags:
            Require all of these tags.
        ranges:
            ``{"mw": (8.0, 9.0)}`` — inclusive numeric metadata ranges.
        exact:
            Exact-match metadata constraints.

        Results are sorted by product id for determinism.
        """
        out = []
        for record in self._records.values():
            if kind is not None and record.kind != kind:
                continue
            if tags is not None and not tags <= record.tags:
                continue
            if ranges:
                ok = True
                for key, (lo, hi) in ranges.items():
                    value = record.metadata.get(key)
                    # bool is an int subclass but True/False matching a
                    # numeric range is always a type confusion, not a hit.
                    if (
                        isinstance(value, bool)
                        or not isinstance(value, (int, float))
                        or not (lo <= value <= hi)
                    ):
                        ok = False
                        break
                if not ok:
                    continue
            if any(record.metadata.get(k) != v for k, v in exact.items()):
                continue
            out.append(record)
        return sorted(out, key=lambda r: r.product_id)

    def kinds(self) -> dict[str, int]:
        """Product counts by kind."""
        counts: dict[str, int] = {}
        for record in self._records.values():
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    # -- persistence --------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Persist the catalog as JSON, atomically.

        The payload is written temp-then-rename with a sha256 sidecar
        (:func:`repro.integrity.write_artifact`), so a crash mid-save
        leaves either the previous catalog or the new one — never a
        torn file — and :meth:`load` can verify what it reads.
        """
        path = Path(path)
        payload = [
            {
                "product_id": r.product_id,
                "kind": r.kind,
                "site": r.site,
                "size_mb": r.size_mb,
                "tags": sorted(r.tags),
                "metadata": r.metadata,
                "provenance": r.provenance,
            }
            for r in sorted(self._records.values(), key=lambda r: r.product_id)
        ]
        write_artifact(path, json.dumps(payload, indent=2).encode("utf-8"))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DataCatalog":
        """Load a catalog saved by :meth:`save`, verifying its digest.

        A file that fails its sidecar check is quarantined
        (:func:`repro.integrity.quarantine_artifact`) and the load
        raises :class:`~repro.errors.CatalogError` — unlike cache
        entries, a catalog has no rebuild-from-source, so the caller
        must restore from a replica or re-deposit. Files without a
        sidecar (pre-integrity saves) load unverified.
        """
        path = Path(path)
        if not path.exists():
            raise CatalogError(f"catalog file not found: {path}")
        try:
            data = read_verified(path)
        except IntegrityError as exc:
            quarantined = quarantine_artifact(path, reason=str(exc))
            raise CatalogError(
                f"{path}: failed its integrity check ({exc}); "
                f"quarantined to {quarantined}"
            ) from exc
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CatalogError(f"{path}: invalid JSON: {exc}") from exc
        catalog = cls()
        for item in payload:
            if not isinstance(item, dict):
                raise CatalogError(
                    f"{path}: malformed record: expected an object, "
                    f"got {type(item).__name__}"
                )
            tags = item.get("tags", [])
            if not isinstance(tags, list) or not all(
                isinstance(t, str) for t in tags
            ):
                # A bare string would silently explode into per-character
                # tags through frozenset(); reject it loudly instead.
                raise CatalogError(
                    f"{path}: malformed record "
                    f"{item.get('product_id', '?')!r}: tags must be a "
                    f"list of strings, got {tags!r}"
                )
            metadata = item.get("metadata", {})
            if not isinstance(metadata, dict):
                raise CatalogError(
                    f"{path}: malformed record "
                    f"{item.get('product_id', '?')!r}: metadata must be "
                    f"an object, got {type(metadata).__name__}"
                )
            try:
                catalog.deposit(
                    ProductRecord(
                        product_id=item["product_id"],
                        kind=item["kind"],
                        site=item["site"],
                        size_mb=float(item["size_mb"]),
                        tags=frozenset(tags),
                        metadata=metadata,
                        provenance=item.get("provenance", ""),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise CatalogError(f"{path}: malformed record: {exc}") from exc
        return catalog
