"""Virtual Data Collaboratory substrate: catalog, storage, portal.

The paper's Fig 7 story: FDW products flow into the VDC, which curates
them with metadata, makes them discoverable, and serves them to EEW
researchers — "providing equitable access to MudPy for researchers of
all backgrounds". This subpackage implements that documented surface:

* :mod:`repro.vdc.catalog` — product records, metadata tagging, search,
* :mod:`repro.vdc.storage` — federated storage sites with replica
  placement and cached retrieval,
* :mod:`repro.vdc.portal` — the API facade that launches accelerated
  FDW runs, deposits their products, and answers discovery queries.
"""

from repro.vdc.catalog import DataCatalog, ProductRecord
from repro.vdc.portal import Portal, PortalRun
from repro.vdc.prefetch import PrefetchService, QueryEvent
from repro.vdc.storage import FederatedStorage, StorageSite

__all__ = [
    "DataCatalog",
    "FederatedStorage",
    "Portal",
    "PortalRun",
    "PrefetchService",
    "ProductRecord",
    "QueryEvent",
    "StorageSite",
]
