"""The VDC portal: launch accelerated FDW runs and serve their products.

"If needed, our workflow tool could be launched via the VDC portal's
graphical user interface" (paper §3); "The VDC serves to enhance MudPy
by providing a GUI-based platform for executing accelerated simulations
and monitoring their progress" (paper §6). :class:`Portal` is that
surface as an API: users submit an FDW configuration, the portal runs it
on the (simulated) OSG, monitors it, deposits the resulting products
into the catalog/storage, and answers discovery + retrieval requests —
the complete Fig 7 data flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PortalError
from repro.core.config import FdwConfig
from repro.core.monitor import DagmanStats
from repro.core.phases import gf_archive_mb, plan_phases
from repro.core.submit_osg import FdwBatchResult, run_fdw_batch
from repro.osg.capacity import CapacityProcess
from repro.osg.pool import OSPoolConfig
from repro.vdc.catalog import DataCatalog, ProductRecord
from repro.vdc.prefetch import PrefetchService, QueryEvent
from repro.vdc.storage import FederatedStorage, StorageSite

__all__ = ["Portal", "PortalRun"]


@dataclass
class PortalRun:
    """One portal-launched workflow execution."""

    run_id: str
    config: FdwConfig
    result: FdwBatchResult
    stats: DagmanStats
    n_planned_jobs: int = 0
    product_ids: list[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """Every planned DAG node completed (failed attempts may have
        been retried; each retry is a distinct cluster in the log)."""
        return self.stats.n_completed == self.n_planned_jobs


class Portal:
    """The VDC-facing API for running FDW and accessing its products.

    Parameters
    ----------
    catalog, storage:
        Shared VDC services; defaults build a fresh catalog and a
        three-site federation.
    pool_config, capacity:
        OSG model overrides forwarded to the pool simulator.
    """

    def __init__(
        self,
        catalog: DataCatalog | None = None,
        storage: FederatedStorage | None = None,
        pool_config: OSPoolConfig | None = None,
        capacity: CapacityProcess | None = None,
    ) -> None:
        # Explicit None checks: an empty DataCatalog is falsy (__len__),
        # so `catalog or DataCatalog()` would silently discard a shared
        # catalog that happens to have no records yet.
        self.catalog = catalog if catalog is not None else DataCatalog()
        self.storage = storage if storage is not None else FederatedStorage(
            [
                StorageSite("vdc-rutgers"),
                StorageSite("vdc-psu"),
                StorageSite("vdc-utah"),
            ]
        )
        self.pool_config = pool_config
        self.capacity = capacity
        self.prefetcher = PrefetchService(self.catalog, self.storage)
        self._runs: dict[str, PortalRun] = {}
        # Monotonic: run ids must never be reused, even when a launch
        # fails and leaves no entry in _runs (deriving the id from
        # len(_runs) made the next launch collide with the failed one's
        # deposited-then-rolled-back id).
        self._run_counter = 0

    # -- execution -----------------------------------------------------------

    def launch(
        self,
        config: FdwConfig,
        user: str = "anonymous",
        deposit_site: str | None = None,
        seed: int = 0,
    ) -> PortalRun:
        """Run an FDW configuration and deposit its products.

        The portal models product deposition at workflow granularity:
        one waveform-catalog product, one rupture-catalog product and
        one GF-bank product per run, tagged and annotated for
        discovery. (Per-rupture granularity lives in
        :class:`~repro.seismo.mudpy_io.ProductArchive`.)
        """
        site = deposit_site or next(iter(self.storage.sites))
        self.storage.site(site)  # validate early
        run_id = self.allocate_run_id(config)

        result = run_fdw_batch(
            config,
            pool_config=self.pool_config,
            capacity=self.capacity,
            seed=seed,
        )
        log_text = result.user_logs[config.name]
        stats = DagmanStats.from_log_text(log_text, source=run_id)

        run = PortalRun(
            run_id=run_id,
            config=config,
            result=result,
            stats=stats,
            n_planned_jobs=plan_phases(config).n_jobs,
        )
        run.product_ids.extend(
            self.deposit_products(run_id, config, site=site, user=user)
        )
        self._runs[run_id] = run
        return run

    def allocate_run_id(self, config: FdwConfig) -> str:
        """Hand out the next run id (monotonic, never reused)."""
        run_id = f"run-{self._run_counter:04d}-{config.name}"
        self._run_counter += 1
        return run_id

    def deposit_products(
        self,
        run_id: str,
        config: FdwConfig,
        site: str,
        user: str = "anonymous",
    ) -> list[str]:
        """Deposit one run's product set, all-or-nothing.

        Stores bytes and catalog records for the waveform/rupture/GF
        products of ``run_id``. If any step fails, every replica and
        record already placed for this run is rolled back before the
        error propagates — a half-deposited run never leaks orphan
        storage bytes or catalog entries. Shared by :meth:`launch` and
        the multi-tenant service layer (:mod:`repro.service`). Returns
        the deposited product ids.
        """
        base_tags = {"fdw", "chile", f"user:{user}"}
        waveform_mb = 0.25 * config.n_waveforms  # compressed per-set payloads
        products = [
            ("waveforms", waveform_mb, {"n_waveforms": config.n_waveforms}),
            ("ruptures", 0.02 * config.n_waveforms, {"n_ruptures": config.n_waveforms}),
            ("gf_bank", gf_archive_mb(config), {"n_stations": config.n_stations}),
        ]
        stored: list[str] = []
        deposited: list[str] = []
        try:
            for kind, size_mb, meta in products:
                product_id = f"{run_id}.{kind}"
                self.storage.store(product_id, size_mb, site)
                stored.append(product_id)
                self.catalog.deposit(
                    ProductRecord(
                        product_id=product_id,
                        kind=kind,
                        site=site,
                        size_mb=size_mb,
                        tags=frozenset(base_tags),
                        metadata={
                            "mw_min": config.mw_range[0],
                            "mw_max": config.mw_range[1],
                            "n_stations": config.n_stations,
                            **meta,
                        },
                        provenance=run_id,
                    )
                )
                deposited.append(product_id)
        except Exception:
            for product_id in deposited:
                self.catalog.withdraw(product_id)
            for product_id in stored:
                self.storage.remove(product_id)
            raise
        return stored

    # -- monitoring ----------------------------------------------------------

    def status(self, run_id: str) -> str:
        """Monitoring report of a run (the portal's progress view)."""
        run = self._get_run(run_id)
        return run.stats.report(name=run_id)

    def runs(self) -> list[str]:
        """All run ids, oldest first."""
        return list(self._runs)

    def _get_run(self, run_id: str) -> PortalRun:
        try:
            return self._runs[run_id]
        except KeyError:
            raise PortalError(f"unknown run {run_id!r}") from None

    # -- discovery / retrieval -------------------------------------------------

    def discover(
        self, home_site: str | None = None, **query: object
    ) -> list[ProductRecord]:
        """Search the catalog (thin facade over
        :meth:`~repro.vdc.catalog.DataCatalog.search`).

        With ``home_site`` given, the query is recorded in that site's
        trace so the intelligent-delivery service can prefetch likely
        next retrievals (paper §6).
        """
        if home_site is not None:
            self.prefetcher.record_query(
                QueryEvent(
                    home_site=home_site,
                    kind=query.get("kind"),  # type: ignore[arg-type]
                    tags=frozenset(query.get("tags") or ()),  # type: ignore[arg-type]
                    ranges=dict(query.get("ranges") or {}),  # type: ignore[arg-type]
                    metadata={
                        k: v
                        for k, v in query.items()
                        if k not in ("kind", "tags", "ranges")
                    },
                )
            )
        return self.catalog.search(**query)  # type: ignore[arg-type]

    def retrieve(self, product_id: str, home_site: str) -> float:
        """Deliver a product to a user's home site; returns seconds.

        Retrieval leaves a cached replica at the home site, so repeated
        community access gets faster — the democratization mechanic.
        """
        self.catalog.get(product_id)  # existence check with a clear error
        return self.storage.retrieval_time_s(product_id, home_site)
