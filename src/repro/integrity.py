"""End-to-end artifact integrity: digests, verified reads, quarantine.

On a federated substrate (OSPool execute points, OSDF/Stash caches) a
cached artifact can be silently truncated or bit-flipped between the
write that produced it and the read that consumes it. The paper's VDC
concept leans on exactly such caches, so this module gives every on-disk
artifact the protections real federated storage applies:

* **Content digests** — :func:`write_digest` stores a sha256 sidecar
  (``<artifact>.sha256``, ``sha256sum`` format) next to the artifact,
  written atomically via temp-then-rename so the pair is never torn;
* **Verified reads** — :func:`read_verified` returns the artifact bytes
  only after the sidecar digest matches, raising a typed
  :class:`~repro.errors.IntegrityError` on any mismatch or truncation
  (the bytes are hashed from the single read, so verification costs one
  in-memory sha256 pass, not a second disk read);
* **Quarantine** — :func:`quarantine_artifact` moves a damaged artifact
  (and its sidecar) aside into a ``quarantine/`` directory instead of
  deleting it, preserving the evidence for post-mortems while freeing
  the cache slot for a rebuild-from-source.

The cache layers (:mod:`repro.core.gfcache`, :mod:`repro.seismo.klcache`)
and the checkpoint machinery (:mod:`repro.core.checkpoint`) route every
disk load through these helpers: a corrupted entry degrades to a
recompute, never a wrong answer or a crash.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from pathlib import Path

from repro.errors import IntegrityError

__all__ = [
    "DIGEST_SUFFIX",
    "QUARANTINE_DIRNAME",
    "sha256_bytes",
    "digest_path",
    "write_artifact",
    "write_digest",
    "read_digest",
    "read_verified",
    "verify_artifact",
    "quarantine_artifact",
]

#: Sidecar suffix appended to the artifact filename (``bank.npz.sha256``).
DIGEST_SUFFIX = ".sha256"

#: Subdirectory (sibling of the artifact) damaged artifacts are moved into.
QUARANTINE_DIRNAME = "quarantine"


def sha256_bytes(data: bytes) -> str:
    """Hex sha256 of a byte string."""
    return hashlib.sha256(data).hexdigest()


def digest_path(path: str | Path) -> Path:
    """Sidecar location of an artifact's digest."""
    path = Path(path)
    return path.with_name(path.name + DIGEST_SUFFIX)


def _atomic_write(path: Path, data: bytes) -> None:
    """Temp-then-rename write (same-directory temp, fsynced)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def write_artifact(path: str | Path, data: bytes) -> Path:
    """Atomically write an artifact *and* its sha256 sidecar.

    The payload goes down via temp-then-rename (a crash mid-write can
    never leave a torn file under the final name), then the sidecar is
    written from the digest of the in-memory bytes. The artifact/sidecar
    pair therefore always agrees; a reader that observes the artifact
    without its fresh sidecar (crash between the two renames) falls back
    to trust-on-first-use or fails the digest check — never parses a
    half-written payload. Returns the artifact path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(path, data)
    write_digest(path, sha256_bytes(data))
    return path


def write_digest(path: str | Path, digest: str | None = None) -> Path:
    """Write the sha256 sidecar of an artifact, atomically.

    ``digest`` short-circuits the hash when the caller already computed
    it (e.g. over the bytes it just wrote); ``None`` hashes the file.
    Returns the sidecar path. The sidecar uses ``sha256sum`` format
    (``<hex>  <name>``) so standard tooling can check it too.
    """
    path = Path(path)
    if digest is None:
        digest = sha256_bytes(path.read_bytes())
    side = digest_path(path)
    _atomic_write(side, f"{digest}  {path.name}\n".encode("ascii"))
    return side


def read_digest(path: str | Path) -> str | None:
    """Recorded digest of an artifact, or ``None`` without a sidecar.

    A malformed sidecar raises :class:`IntegrityError` — a half-written
    or scribbled-on sidecar is itself corruption evidence.
    """
    side = digest_path(path)
    if not side.exists():
        return None
    text = side.read_text(errors="replace").strip()
    token = text.split()[0] if text else ""
    if len(token) != 64 or any(c not in "0123456789abcdef" for c in token):
        raise IntegrityError(f"malformed digest sidecar {side}: {text[:64]!r}")
    return token


#: Per-process memo of successful verifications: path -> (artifact
#: fingerprint, sidecar fingerprint, digest). A warm re-read of a file
#: whose stat fingerprints are unchanged since it last hashed clean
#: skips the sha256 pass entirely — the rsync-style quick check that
#: keeps digest overhead on warm cache hits in the noise (the
#: ``bench-resilience`` budget). Any rewrite bumps ``st_mtime_ns`` (or
#: the size/inode) and forces a full re-hash, so cross-process and
#: cross-leg corruption is always caught; the elision only trusts a
#: file this process already verified *and* that has not changed since.
_VERIFIED: OrderedDict[str, tuple] = OrderedDict()
_VERIFIED_MAX = 4096


def _fingerprint(path: Path) -> tuple | None:
    """Cheap change detector: ``(size, mtime_ns, inode)`` or ``None``."""
    try:
        st = path.stat()
    except OSError:
        return None
    return (st.st_size, st.st_mtime_ns, st.st_ino)


def read_verified(path: str | Path, verify: bool = True) -> bytes:
    """Read an artifact's bytes, verifying the sidecar digest.

    Raises
    ------
    IntegrityError
        When the artifact is missing, or a sidecar exists and its digest
        does not match the bytes on disk (bit-flip, truncation, torn
        write). An artifact *without* a sidecar is returned unverified —
        trust-on-first-use for entries that predate the integrity layer;
        callers that parse the bytes still convert parse failures to
        :class:`IntegrityError`.

    ``verify=False`` skips the hash (the measured-overhead arm of the
    ``bench-resilience`` group) but still reads through this path.
    Successful verifications are memoized per process against a stat
    fingerprint, so repeated warm reads of an unmodified artifact hash
    it once, not every time.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise IntegrityError(f"unreadable artifact {path}: {exc}") from exc
    if not verify:
        return data
    expected = read_digest(path)
    if expected is not None:
        key = str(path)
        fp = (_fingerprint(path), _fingerprint(digest_path(path)))
        memo = _VERIFIED.get(key)
        if (
            memo is not None
            and memo == (fp, expected)
            and fp[0] is not None
            and len(data) == fp[0][0]
        ):
            _VERIFIED.move_to_end(key)
            return data
        actual = sha256_bytes(data)
        if actual != expected:
            _VERIFIED.pop(key, None)
            raise IntegrityError(
                f"digest mismatch for {path}: stored {expected[:12]}..., "
                f"bytes hash to {actual[:12]}... "
                f"({len(data)} bytes on disk)"
            )
        _VERIFIED[key] = (fp, expected)
        while len(_VERIFIED) > _VERIFIED_MAX:
            _VERIFIED.popitem(last=False)
    return data


def verify_artifact(path: str | Path) -> bool:
    """Check an artifact against its sidecar without keeping the bytes.

    Returns ``True`` when verified, ``False`` when no sidecar exists;
    raises :class:`IntegrityError` on mismatch.
    """
    return read_digest(path) is not None and bool(read_verified(path))


def quarantine_artifact(
    path: str | Path,
    quarantine_dir: str | Path | None = None,
    reason: str = "",
) -> Path:
    """Move a damaged artifact aside — never delete it.

    The artifact and its sidecar (when present) are renamed into
    ``quarantine_dir`` (default: a ``quarantine/`` sibling of the
    artifact), uniquified with a numeric suffix if the name is taken. A
    ``<name>.reason`` note records why. Returns the quarantined
    artifact's new path.
    """
    path = Path(path)
    qdir = (
        Path(quarantine_dir)
        if quarantine_dir is not None
        else path.parent / QUARANTINE_DIRNAME
    )
    qdir.mkdir(parents=True, exist_ok=True)
    target = qdir / path.name
    n = 0
    while target.exists():
        n += 1
        target = qdir / f"{path.name}.{n}"
    os.replace(path, target)
    side = digest_path(path)
    if side.exists():
        os.replace(side, target.with_name(target.name + DIGEST_SUFFIX))
    if reason:
        target.with_name(target.name + ".reason").write_text(reason + "\n")
    return target
